//! Figure 12: normalized execution time of all versions (the headline
//! result).
//!
//! The paper reports, at 34 qubits: Overlap 24.03%, Pruning 47.69%,
//! Reorder 58.60%, Compression/Q-GPU 71.89% average execution-time
//! reduction over the baseline, and a 1.49× speedup over CPU-OpenMP.

use qgpu_circuit::generators::Benchmark;
use qgpu_math::stats::geometric_mean;

use crate::comparators::cpu_parallel;
use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::experiments::{f2, Table};

/// One circuit's normalized times.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Circuit abbreviation.
    pub circuit: String,
    /// Times of the six versions normalized to baseline.
    pub versions: [f64; 6],
    /// CPU-OpenMP time normalized to baseline.
    pub cpu_openmp: f64,
}

/// Runs the full sweep at one size, returning structured rows (the nine
/// circuits run concurrently; each simulation is single-threaded).
pub fn measure(qubits: usize) -> Vec<Fig12Row> {
    crate::experiments::par_map(&Benchmark::ALL, |&b| {
        let circuit = b.generate(qubits);
        let times: Vec<f64> = Version::ALL
            .iter()
            .map(|&v| {
                Simulator::new(
                    SimConfig::scaled_paper(qubits)
                        .with_version(v)
                        .timing_only(),
                )
                .run(&circuit)
                .report
                .total_time
            })
            .collect();
        let baseline = times[0];
        let host = SimConfig::scaled_paper(qubits).platform.host;
        let cpu = cpu_parallel(&circuit, &host).total_time;
        let mut versions = [0.0; 6];
        for (slot, t) in versions.iter_mut().zip(times.iter()) {
            *slot = t / baseline;
        }
        Fig12Row {
            circuit: b.abbrev().to_string(),
            versions,
            cpu_openmp: cpu / baseline,
        }
    })
}

/// Runs the sweep and renders the paper-style table.
pub fn run(qubits: usize) -> Table {
    let rows = measure(qubits);
    let mut table = Table::new(
        &format!("Figure 12: execution time normalized to baseline ({qubits} qubits)"),
        [
            "circuit",
            "Baseline",
            "Naive",
            "Overlap",
            "Pruning",
            "Reorder",
            "Q-GPU",
            "CPU-OpenMP",
        ],
    );
    for r in &rows {
        let mut cells = vec![r.circuit.clone()];
        cells.extend(r.versions.iter().map(|&v| f2(v)));
        cells.push(f2(r.cpu_openmp));
        table.row(cells);
    }
    // Geometric means, as the paper averages speedups across circuits.
    let mut means = vec!["geomean".to_string()];
    for i in 0..6 {
        means.push(f2(geometric_mean(rows.iter().map(|r| r.versions[i]))));
    }
    means.push(f2(geometric_mean(rows.iter().map(|r| r.cpu_openmp))));
    table.row(means);
    table
}

/// Scalability view of Figure 12: geomean normalized time per version as
/// the qubit count grows (the paper's per-circuit bar groups at
/// 30/31/…/34 qubits show Q-GPU's advantage widening with scale).
pub fn run_scaling(sizes: &[usize]) -> Table {
    let mut table = Table::new(
        "Figure 12 (scaling): geomean normalized time vs qubit count",
        [
            "qubits",
            "Naive",
            "Overlap",
            "Pruning",
            "Reorder",
            "Q-GPU",
            "CPU-OpenMP",
        ],
    );
    for &q in sizes {
        let rows = measure(q);
        let mut cells = vec![q.to_string()];
        for i in 1..6 {
            cells.push(f2(geometric_mean(rows.iter().map(|r| r.versions[i]))));
        }
        cells.push(f2(geometric_mean(rows.iter().map(|r| r.cpu_openmp))));
        table.row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_table_shapes() {
        let t = run_scaling(&[9, 11]);
        assert_eq!(t.rows.len(), 2);
        // Q-GPU (col 5) beats baseline at both sizes.
        for row in &t.rows {
            let qgpu: f64 = row[5].parse().expect("number");
            assert!(qgpu < 1.0);
        }
    }

    #[test]
    fn recipe_shape_matches_paper() {
        // The step-wise improvement of the recipe on average:
        // naive > 1 > overlap > pruning ≥ reorder ≥ qgpu.
        let rows = measure(11);
        let mean = |i: usize| geometric_mean(rows.iter().map(|r| r.versions[i]));
        let naive = mean(1);
        let overlap = mean(2);
        let pruning = mean(3);
        let reorder = mean(4);
        let qgpu = mean(5);
        assert!(naive > 1.0, "naive {naive} must lose to baseline");
        assert!(overlap < 1.0, "overlap {overlap} must beat baseline");
        assert!(pruning < overlap, "pruning {pruning} < overlap {overlap}");
        assert!(
            reorder <= pruning + 1e-9,
            "reorder {reorder} ≤ pruning {pruning}"
        );
        assert!(qgpu < reorder + 1e-9, "qgpu {qgpu} ≤ reorder {reorder}");
        // The full recipe should save a large fraction (paper: 71.89% at
        // 34 qubits; scaled runs land in the same region).
        assert!(qgpu < 0.7, "qgpu normalized time {qgpu}");
    }

    #[test]
    fn qgpu_competitive_with_cpu_openmp() {
        // Paper: Q-GPU is 1.49x over CPU-OpenMP on average.
        let rows = measure(11);
        let qgpu = geometric_mean(rows.iter().map(|r| r.versions[5]));
        let cpu = geometric_mean(rows.iter().map(|r| r.cpu_openmp));
        assert!(
            qgpu < cpu * 1.5,
            "Q-GPU ({qgpu}) should be at least competitive with CPU-OpenMP ({cpu})"
        );
    }

    #[test]
    fn per_circuit_variation_matches_paper() {
        // hchain and rqc benefit least from reorder+compression (dense
        // dependencies, dispersed amplitudes); iqp and gs benefit most
        // from pruning.
        let rows = measure(11);
        let get = |name: &str, i: usize| -> f64 {
            rows.iter()
                .find(|r| r.circuit == name)
                .expect("row")
                .versions[i]
        };
        assert!(get("iqp", 3) < get("qft", 3), "iqp prunes better than qft");
    }
}
