//! Figure 19: multi-GPU platforms (paper §V-E).
//!
//! Server-1: 4 × P4 over PCIe; Server-2: 4 × V100 over NVLink. Q-GPU's
//! round-robin streaming (Figure 18) is compared against the Qiskit-Aer
//! multi-GPU baseline (static allocation across devices). The paper
//! reports 2.97× and 2.98× speedups.

use qgpu_circuit::generators::Benchmark;
use qgpu_device::Platform;
use qgpu_math::stats::geometric_mean;

use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::experiments::{f2, Table};

/// Runs the two-server comparison.
pub fn run(qubits: usize) -> Table {
    let mut table = Table::new(
        &format!(
            "Figure 19: multi-GPU execution time normalized to Qiskit multi-GPU ({qubits} qubits)"
        ),
        ["circuit", "4xP4/PCIe Q-GPU", "4xV100/NVLink Q-GPU"],
    );
    // Each GPU holds a quarter of the paper's residency ratio so the
    // aggregate matches the single-GPU experiments.
    let servers = [
        Platform::quad_p4_pcie().miniaturize(qubits, 496.0 / 8192.0 / 4.0),
        Platform::quad_v100_nvlink().miniaturize(qubits, 496.0 / 8192.0 / 4.0),
    ];
    let mut norms: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for b in Benchmark::ALL {
        let circuit = b.generate(qubits);
        let mut cells = vec![b.abbrev().to_string()];
        for (i, server) in servers.iter().enumerate() {
            let time = |v: Version| {
                Simulator::new(SimConfig::new(server.clone()).with_version(v).timing_only())
                    .run(&circuit)
                    .report
                    .total_time
            };
            let norm = time(Version::QGpu) / time(Version::Baseline);
            norms[i].push(norm);
            cells.push(f2(norm));
        }
        table.row(cells);
    }
    table.row([
        "geomean".to_string(),
        f2(geometric_mean(norms[0].iter().copied())),
        f2(geometric_mean(norms[1].iter().copied())),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qgpu_beats_multi_gpu_baseline_on_both_servers() {
        let t = run(11);
        let avg = t.rows.last().expect("geomean");
        for col in [1, 2] {
            let norm: f64 = avg[col].parse().expect("number");
            assert!(
                norm < 0.8,
                "Q-GPU must clearly beat the multi-GPU baseline (col {col}: {norm})"
            );
        }
    }
}
