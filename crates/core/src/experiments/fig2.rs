//! Figure 2: baseline execution time breakdown.
//!
//! The paper finds that with a capacity-exceeded GPU, on average 88.89% of
//! baseline time is CPU update, 10.29% amplitude exchange and
//! synchronization, and 0.82% GPU compute.

use qgpu_circuit::generators::Benchmark;

use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::experiments::{pct, Table};

/// Runs the breakdown at the given circuit size.
pub fn run(qubits: usize) -> Table {
    let mut table = Table::new(
        &format!("Figure 2: baseline execution breakdown ({qubits} qubits)"),
        ["circuit", "cpu", "exchange+sync", "gpu"],
    );
    let mut sums = [0.0f64; 3];
    for b in Benchmark::ALL {
        let circuit = b.generate(qubits);
        let cfg = SimConfig::scaled_paper(qubits)
            .with_version(Version::Baseline)
            .timing_only();
        let r = Simulator::new(cfg).run(&circuit);
        let total = r.report.total_time;
        let cpu = r.report.host_time / total;
        let exchange = (r.report.transfer_time + r.report.sync_time) / total;
        let gpu = r.report.gpu_time / total;
        sums[0] += cpu;
        sums[1] += exchange;
        sums[2] += gpu;
        table.row([b.abbrev().to_string(), pct(cpu), pct(exchange), pct(gpu)]);
    }
    let n = Benchmark::ALL.len() as f64;
    table.row([
        "average".to_string(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_is_cpu_dominated() {
        let t = run(10);
        // The average row: CPU fraction far larger than GPU fraction.
        let avg = t.rows.last().expect("average row");
        let cpu: f64 = avg[1].trim_end_matches('%').parse().expect("number");
        let gpu: f64 = avg[3].trim_end_matches('%').parse().expect("number");
        assert!(cpu > 50.0, "cpu = {cpu}%");
        assert!(gpu < 20.0, "gpu = {gpu}%");
    }

    #[test]
    fn one_row_per_circuit_plus_average() {
        let t = run(8);
        assert_eq!(t.rows.len(), 10);
    }
}
