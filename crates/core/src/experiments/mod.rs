//! Experiment drivers: one module per table/figure of the paper's
//! evaluation.
//!
//! Every module exposes a `run(...)` returning one or more [`Table`]s with
//! the same rows/series the paper plots. The `repro` binary
//! (`qgpu-bench`) invokes these and prints them; integration tests run
//! them at small sizes.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig2`] | Baseline execution time breakdown |
//! | [`fig3_4`] | Naive normalized time + breakdown |
//! | [`fig6`] | Timeline of each optimization |
//! | [`fig7`] | hchain_10 amplitude distribution |
//! | [`tab2`] | Ops before full involvement (34 qubits) |
//! | [`fig8`] | gs_5 reordering walk-through |
//! | [`fig9`] | Involvement under three gate orders |
//! | [`fig10`] | Residual distributions (compressibility) |
//! | [`fig12`] | Normalized execution time, all versions |
//! | [`fig13`] | Normalized data transfer time |
//! | [`fig14`] | Compression/decompression overheads |
//! | [`fig15`] | Roofline analysis |
//! | [`fig16`] | Comparison with Qsim-Cirq and QDK |
//! | [`fig17`] | V100 and A100 platforms |
//! | [`fig19`] | Multi-GPU platforms |
//! | [`tab3`] | Deep circuits |

pub mod ablations;
pub mod ext_batching;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig19;
pub mod fig2;
pub mod fig3_4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod tab2;
pub mod tab3;

use std::fmt;

use serde::{Deserialize, Serialize};

/// A rendered experiment result: a titled table of strings.
///
/// # Examples
///
/// ```
/// use qgpu::experiments::Table;
///
/// let mut t = Table::new("demo", ["a", "b"]);
/// t.row(["1", "2"]);
/// let s = t.to_string();
/// assert!(s.contains("demo"));
/// assert!(s.contains("| 1"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (the paper artifact it reproduces).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(title: &str, headers: I) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Cell accessor (for tests).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Serializes the table as a JSON object
    /// `{"title": …, "headers": […], "rows": [[…]]}` — hand-rolled so the
    /// workspace needs no JSON dependency; cells are plain strings.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out
        }
        fn arr(items: &[String]) -> String {
            let cells: Vec<String> = items.iter().map(|c| format!("\"{}\"", esc(c))).collect();
            format!("[{}]", cells.join(","))
        }
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"title\":\"{}\",\"headers\":{},\"rows\":[{}]}}",
            esc(&self.title),
            arr(&self.headers),
            rows.join(",")
        )
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells.iter()) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// Runs `f` over `items` on one thread per item (experiments fan out over
/// the nine benchmark circuits; each simulation is single-threaded and
/// independent). Results keep the input order.
///
/// # Panics
///
/// Propagates panics from `f`.
pub(crate) fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    let slots: Vec<parking_lot::Mutex<Option<U>>> = items
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    crossbeam::scope(|scope| {
        for (item, slot) in items.iter().zip(slots.iter()) {
            scope.spawn(|_| {
                *slot.lock() = Some(f(item));
            });
        }
    })
    .expect("experiment worker panicked");
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("worker filled its slot"))
        .collect()
}

/// Formats a float with 2 decimals (experiment cell helper).
pub(crate) fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with 1 decimal.
pub(crate) fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("Figure X", ["circuit", "time"]);
        t.row(["qft", "1.23"]);
        t.row(["iqp", "0.77"]);
        let s = t.to_string();
        assert!(s.starts_with("## Figure X"));
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("| qft"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", ["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn json_output_escapes_and_structures() {
        let mut t = Table::new("Figure \"X\"", ["a", "b"]);
        t.row(["1\n2", "back\\slash"]);
        let j = t.to_json();
        assert!(j.starts_with("{\"title\":\"Figure \\\"X\\\"\""));
        assert!(j.contains("\"headers\":[\"a\",\"b\"]"));
        assert!(j.contains("1\\n2"));
        assert!(j.contains("back\\\\slash"));
        assert!(j.ends_with("}"));
    }

    #[test]
    fn helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.5), "50.0%");
    }
}
