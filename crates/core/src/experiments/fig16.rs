//! Figure 16: comparison with Google Qsim-Cirq and Microsoft QDK.
//!
//! The paper converts the benchmarks to OpenQASM (only gs and hlf import
//! into Qsim-Cirq; qft, iqp, hlf and gs convert to Q#) and reports 2.02×
//! and 10.82× average speedups for Q-GPU. We run the same subsets through
//! the comparator engines — including the OpenQASM round-trip the paper
//! performs.

use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::qasm;
use qgpu_math::stats::geometric_mean;

use crate::comparators::{qdk_like, qsim_like};
use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::experiments::{f2, Table};

/// Circuits the paper could run on Qsim-Cirq.
pub const QSIM_SET: [Benchmark; 2] = [Benchmark::Gs, Benchmark::Hlf];
/// Circuits the paper could convert to Q# for QDK.
pub const QDK_SET: [Benchmark; 4] = [
    Benchmark::Qft,
    Benchmark::Iqp,
    Benchmark::Hlf,
    Benchmark::Gs,
];

/// Runs both comparisons; returns (qsim table, qdk table).
pub fn run(qubits: usize) -> (Table, Table) {
    let host = SimConfig::scaled_paper(qubits).platform.host.clone();
    let qgpu_time = |b: Benchmark| -> f64 {
        let c = b.generate(qubits);
        Simulator::new(
            SimConfig::scaled_paper(qubits)
                .with_version(Version::QGpu)
                .timing_only(),
        )
        .run(&c)
        .report
        .total_time
    };
    // The paper ships OpenQASM into the other simulators: round-trip the
    // circuit through the emitter/parser exactly as that flow would.
    let exported = |b: Benchmark| {
        let c = b.generate(qubits);
        qasm::parse(&qasm::to_qasm(&c)).expect("benchmarks emit valid OpenQASM")
    };

    let mut qsim_table = Table::new(
        &format!("Figure 16a: Qsim-Cirq vs Q-GPU ({qubits} qubits, time normalized to Qsim)"),
        ["circuit", "qsim-like", "Q-GPU"],
    );
    let mut speedups = Vec::new();
    for b in QSIM_SET {
        let qsim = qsim_like(&exported(b), &host).total_time;
        let ours = qgpu_time(b);
        speedups.push(qsim / ours);
        qsim_table.row([b.abbrev().to_string(), f2(1.0), f2(ours / qsim)]);
    }
    qsim_table.row([
        "geomean speedup".to_string(),
        String::new(),
        f2(geometric_mean(speedups.iter().copied())),
    ]);

    let mut qdk_table = Table::new(
        &format!("Figure 16b: QDK vs Q-GPU ({qubits} qubits, time normalized to QDK)"),
        ["circuit", "qdk-like", "Q-GPU"],
    );
    let mut speedups = Vec::new();
    for b in QDK_SET {
        let qdk = qdk_like(&exported(b), &host).total_time;
        let ours = qgpu_time(b);
        speedups.push(qdk / ours);
        qdk_table.row([b.abbrev().to_string(), f2(1.0), f2(ours / qdk)]);
    }
    qdk_table.row([
        "geomean speedup".to_string(),
        String::new(),
        f2(geometric_mean(speedups.iter().copied())),
    ]);
    (qsim_table, qdk_table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qgpu_beats_qdk_substantially() {
        let (_, qdk) = run(11);
        let speedup: f64 = qdk.rows.last().expect("geomean")[2]
            .parse()
            .expect("number");
        assert!(
            speedup > 2.0,
            "Q-GPU vs QDK speedup = {speedup} (paper: 10.82x)"
        );
    }

    #[test]
    fn qgpu_competitive_with_qsim() {
        let (qsim, _) = run(11);
        let speedup: f64 = qsim.rows.last().expect("geomean")[2]
            .parse()
            .expect("number");
        assert!(
            speedup > 0.8,
            "Q-GPU vs Qsim speedup = {speedup} (paper: 2.02x)"
        );
    }
}
