//! Q-GPU: a recipe of optimizations for quantum circuit simulation.
//!
//! This crate is the top of the workspace: it orchestrates the functional
//! simulator (`qgpu-statevec`), the scheduling machinery (`qgpu-sched`),
//! the GFC compressor (`qgpu-compress`) and the device timing model
//! (`qgpu-device`) into the six execution versions evaluated by the paper
//! (HPCA 2022):
//!
//! | Version | Adds |
//! |---|---|
//! | [`Version::Baseline`] | Qiskit-Aer-style static chunk allocation |
//! | [`Version::Naive`] | dynamic streaming of every chunk, serialized |
//! | [`Version::Overlap`] | proactive bidirectional transfer (§IV-A) |
//! | [`Version::Pruning`] | zero-amplitude chunk pruning (§IV-B) |
//! | [`Version::Reorder`] | forward-looking gate reordering (§IV-C) |
//! | [`Version::QGpu`] | GFC compression of non-zero chunks (§IV-D) |
//!
//! Every version produces the **identical final state** — only the modeled
//! timing differs. That invariant is what makes the recipe a set of pure
//! optimizations, and it is enforced by this crate's tests.
//!
//! # Examples
//!
//! ```
//! use qgpu::{SimConfig, Simulator, Version};
//! use qgpu_circuit::generators::Benchmark;
//!
//! let circuit = Benchmark::Gs.generate(10);
//! let config = SimConfig::scaled_paper(10).with_version(Version::QGpu);
//! let result = Simulator::new(config).run(&circuit);
//! assert!(result.report.total_time > 0.0);
//! let state = result.state.expect("state collected by default");
//! assert!((state.norm() - 1.0).abs() < 1e-9);
//! ```

pub mod checkpoint;
pub mod comparators;
pub mod config;
pub mod engine;
pub mod experiments;
pub mod result;

pub use checkpoint::Checkpoint;
pub use config::{FlightConfig, OptFlags, SimConfig, Version};
pub use engine::Simulator;
pub use qgpu_circuit::NoiseConfig;
pub use qgpu_compress::CodecKind;
pub use qgpu_faults::{FaultConfig, RetryPolicy, SimError};
pub use qgpu_sched::devicegroup::OrchestratorConfig;
pub use result::{ObsData, RunResult};
