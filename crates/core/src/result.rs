//! Run results: the state (optionally) plus the modeled execution report.

use qgpu_device::timeline::TraceEvent;
use qgpu_device::ExecutionReport;
use qgpu_faults::IntegritySummary;
use qgpu_obs::{FlightEvent, MetricsSnapshot, RegistrySnapshot, WallSpan};
use qgpu_statevec::StateVector;

use crate::config::Version;

/// Measured observability data from one run (when
/// [`crate::SimConfig::obs_spans`] was enabled): the wall-clock
/// counterpart of the modeled [`ExecutionReport`].
#[derive(Debug, Clone)]
pub struct ObsData {
    /// Every recorded wall-clock span, in recording order — the measured
    /// track of the two-process Chrome trace.
    pub spans: Vec<WallSpan>,
    /// Counters and log₂ histograms collected during the run.
    pub metrics: MetricsSnapshot,
    /// Wall-clock seconds from recorder creation to run end.
    pub wall_s: f64,
    /// Labeled metric registry: per-stage wall-time histograms keyed by
    /// stage × version, per-gate latency percentiles, per-device task
    /// counters.
    pub registry: RegistrySnapshot,
    /// Flight-recorder events captured during the run (empty unless
    /// [`crate::SimConfig::flight`] was configured).
    pub flight: Vec<FlightEvent>,
    /// Whether any flight event was severe enough (retry, fallback,
    /// device loss, downshift, error) to trigger an automatic dump.
    pub flight_triggered: bool,
}

/// The outcome of one simulated execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which version produced this result.
    pub version: Version,
    /// Name of the circuit that was run.
    pub circuit_name: String,
    /// The final state vector (when `collect_state` was enabled).
    pub state: Option<StateVector>,
    /// Modeled timing, transfer, pruning and compression metrics.
    pub report: ExecutionReport,
    /// Timeline events (when tracing was enabled) — the paper's Figure 6.
    pub trace: Vec<TraceEvent>,
    /// Measured spans and metrics (when `obs_spans` was enabled).
    pub obs: Option<ObsData>,
    /// Seeded end-of-circuit shot counts as `(basis_state, count)` pairs,
    /// descending by count (when [`crate::SimConfig::shots`] was nonzero).
    pub samples: Option<Vec<(usize, u64)>>,
    /// ABFT invariant-check tallies (when
    /// [`crate::SimConfig::integrity_active`] held for the run): checks,
    /// violations, re-executions, repairs, and quarantines.
    pub integrity: Option<IntegritySummary>,
}

impl RunResult {
    /// Speedup of this run relative to another (`other` / `self`).
    ///
    /// # Panics
    ///
    /// Panics if this run's total time is zero.
    pub fn speedup_over(&self, other: &RunResult) -> f64 {
        assert!(self.report.total_time > 0.0);
        other.report.total_time / self.report.total_time
    }

    /// Execution-time reduction vs. `other`, in percent (the headline
    /// metric of the paper's abstract: 71.89% for the full Q-GPU).
    pub fn time_reduction_vs(&self, other: &RunResult) -> f64 {
        if other.report.total_time == 0.0 {
            return 0.0;
        }
        100.0 * (1.0 - self.report.total_time / other.report.total_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with_time(t: f64) -> RunResult {
        let report = ExecutionReport {
            total_time: t,
            ..ExecutionReport::default()
        };
        RunResult {
            version: Version::QGpu,
            circuit_name: "test".into(),
            state: None,
            report,
            trace: Vec::new(),
            obs: None,
            samples: None,
            integrity: None,
        }
    }

    #[test]
    fn speedup_and_reduction() {
        let fast = result_with_time(1.0);
        let slow = result_with_time(4.0);
        assert_eq!(fast.speedup_over(&slow), 4.0);
        assert_eq!(fast.time_reduction_vs(&slow), 75.0);
    }

    #[test]
    fn reduction_of_equal_runs_is_zero() {
        let a = result_with_time(2.0);
        let b = result_with_time(2.0);
        assert!(a.time_reduction_vs(&b).abs() < 1e-12);
    }
}
