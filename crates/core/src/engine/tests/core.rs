//! Cross-version engine invariants: every version computes the same
//! state, fusion and thread counts are bitwise invisible, and the obs
//! layer agrees with the modeled report.

use qgpu_circuit::access::GateAction;
use qgpu_circuit::generators::Benchmark;
use qgpu_statevec::StateVector;

use crate::config::{SimConfig, Version};
use crate::engine::{flops_per_amp, Simulator};

#[test]
fn all_versions_produce_identical_states() {
    // The paper's correctness claim: pruning, reordering and
    // compression "do not affect the simulation results".
    for b in [Benchmark::Gs, Benchmark::Iqp, Benchmark::Qft] {
        let c = b.generate(9);
        let mut reference = StateVector::new_zero(9);
        reference.run(&c);
        for v in Version::ALL {
            let cfg = SimConfig::scaled_paper(9).with_version(v);
            let r = Simulator::new(cfg).run(&c);
            let state = r.state.expect("state collected");
            let dev = state.max_deviation(&reference);
            assert!(dev < 1e-10, "{b}/{v}: deviation {dev}");
        }
    }
}

#[test]
fn recipe_improves_monotonically_in_the_large() {
    // On a pruning-friendly circuit the full recipe must beat the
    // naive version substantially and the baseline overall.
    let c = Benchmark::Iqp.generate(12);
    let time = |v: Version| {
        Simulator::new(SimConfig::scaled_paper(12).with_version(v).timing_only())
            .run(&c)
            .report
            .total_time
    };
    let baseline = time(Version::Baseline);
    let naive = time(Version::Naive);
    let overlap = time(Version::Overlap);
    let pruning = time(Version::Pruning);
    let qgpu = time(Version::QGpu);
    assert!(naive > overlap, "overlap must beat naive");
    assert!(overlap > pruning, "pruning must beat overlap on iqp");
    assert!(qgpu < baseline, "the full recipe must beat the baseline");
}

#[test]
fn gate_fusion_is_bitwise_identical_to_per_gate_execution() {
    // Fused runs are replayed member-by-member, so enabling fusion
    // must not move a single bit of the functional state — in any
    // version.
    for b in [Benchmark::Qft, Benchmark::Iqp, Benchmark::Qaoa] {
        let c = b.generate(10);
        for v in Version::ALL {
            let plain = Simulator::new(SimConfig::scaled_paper(10).with_version(v)).run(&c);
            let fused = Simulator::new(
                SimConfig::scaled_paper(10)
                    .with_version(v)
                    .with_gate_fusion(),
            )
            .run(&c);
            let pa = plain.state.expect("collected");
            let fa = fused.state.expect("collected");
            for i in 0..pa.len() {
                let (x, y) = (pa.amp(i), fa.amp(i));
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "{b}/{v}: amplitude {i} differs under fusion"
                );
            }
        }
    }
}

#[test]
fn thread_count_is_bitwise_invisible() {
    let c = Benchmark::Rqc.generate(10);
    for v in [Version::Baseline, Version::QGpu] {
        let base = SimConfig::scaled_paper(10)
            .with_version(v)
            .with_gate_fusion();
        let one = Simulator::new(base.clone()).run(&c);
        let oa = one.state.expect("collected");
        for threads in [2, 4] {
            let many = Simulator::new(base.clone().with_threads(threads)).run(&c);
            let ma = many.state.expect("collected");
            for i in 0..oa.len() {
                let (x, y) = (oa.amp(i), ma.amp(i));
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "{v}/threads {threads}: amplitude {i} differs"
                );
            }
        }
    }
}

#[test]
fn fusion_is_recorded_and_reduces_streaming_traffic() {
    // qft is a fusion-friendly circuit (long controlled-phase runs):
    // the report must show fused kernels, and Naive — which moves the
    // whole state per op — must move fewer bytes with fewer ops.
    let c = Benchmark::Qft.generate(10);
    let plain = Simulator::new(SimConfig::scaled_paper(10).with_version(Version::Naive)).run(&c);
    let fused = Simulator::new(
        SimConfig::scaled_paper(10)
            .with_version(Version::Naive)
            .with_gate_fusion(),
    )
    .run(&c);
    assert_eq!(plain.report.fused_kernels, 0);
    assert_eq!(plain.report.gates_fused, 0);
    assert!(fused.report.gates_fused > 0, "qft must fuse gates");
    assert!(
        fused.report.fused_kernels > 0,
        "fused kernels must be recorded"
    );
    assert!(
        fused.report.bytes_h2d < plain.report.bytes_h2d / 2,
        "fusion should at least halve naive qft uploads: {} vs {}",
        fused.report.bytes_h2d,
        plain.report.bytes_h2d
    );
    assert!(fused.report.total_time < plain.report.total_time);
}

#[test]
fn obs_recording_captures_spans_and_agrees_with_the_report() {
    let c = Benchmark::Qft.generate(10);
    let cfg = SimConfig::scaled_paper(10)
        .with_version(Version::QGpu)
        .with_obs_spans();
    let r = Simulator::new(cfg).run(&c);
    let obs = r.obs.as_ref().expect("obs data collected");
    assert!(!obs.spans.is_empty());
    assert!(obs.wall_s > 0.0);
    // The measured counters must agree with the modeled report —
    // both now flow from the same engine loop.
    assert_eq!(
        obs.metrics.counter("chunks.processed"),
        Some(r.report.chunks_processed)
    );
    assert_eq!(
        obs.metrics.counter("chunks.pruned"),
        Some(r.report.chunks_pruned)
    );
    // A drift report builds and renders from the collected data.
    let drift = qgpu_obs::DriftReport::new(
        &r.report,
        &obs.spans,
        obs.wall_s,
        qgpu_obs::drift::DEFAULT_TOLERANCE_PP,
    );
    assert!(drift.render().contains("update"));
    // Without the flag the run carries no obs payload.
    let off = Simulator::new(SimConfig::scaled_paper(10).with_version(Version::QGpu)).run(&c);
    assert!(off.obs.is_none());
}

#[test]
fn obs_recording_does_not_change_results() {
    let c = Benchmark::Iqp.generate(10);
    for v in [Version::Baseline, Version::QGpu] {
        let plain = Simulator::new(SimConfig::scaled_paper(10).with_version(v)).run(&c);
        let observed = Simulator::new(
            SimConfig::scaled_paper(10)
                .with_version(v)
                .with_obs_spans()
                .with_threads(2),
        )
        .run(&c);
        assert_eq!(plain.report.total_time, observed.report.total_time);
        assert_eq!(plain.report.bytes_h2d, observed.report.bytes_h2d);
        let pa = plain.state.expect("collected");
        let oa = observed.state.expect("collected");
        for i in 0..pa.len() {
            let (x, y) = (pa.amp(i), oa.amp(i));
            assert!(x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits());
        }
    }
}

#[test]
fn flops_estimates() {
    use qgpu_circuit::{Gate, Operation};
    let h = GateAction::from_operation(&Operation::new(Gate::H, vec![0]));
    assert_eq!(flops_per_amp(&h), 16.0);
    let z = GateAction::from_operation(&Operation::new(Gate::Z, vec![0]));
    assert_eq!(flops_per_amp(&z), 6.0);
}
