//! Engine test suite, split by concern:
//!
//! * [`core`] — cross-version invariants: identical states, fusion and
//!   thread-count bit-exactness, obs agreement, recipe ordering.
//! * [`baseline`] — the paper's §III-B baseline (static allocation,
//!   reactive exchange).
//! * [`streaming`] — the streaming versions' modeled behavior (overlap,
//!   pruning, compression, batching, multi-GPU scaling).
//! * [`resilience`] — fault injection, integrity checking, checkpoints.
//! * [`orchestration`] — multi-device loss, stealing, budgets.
//! * [`pipeline`] — the stage-graph spec and explicit `--opts` subsets.
//! * [`cancel`] — cooperative cancellation at gate boundaries.

mod baseline;
mod cancel;
mod core;
mod orchestration;
mod pipeline;
mod resilience;
mod streaming;

/// Bitwise state equality: the engine's strongest correctness contract.
pub(crate) fn assert_bitwise_eq(a: &qgpu_statevec::StateVector, b: &qgpu_statevec::StateVector) {
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        let (x, y) = (a.amp(i), b.amp(i));
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "amplitude {i} differs"
        );
    }
}
