//! The stage-graph pipeline's flag-subset contract: an explicit
//! [`OptFlags`] subset runs the same composed stage list a named
//! [`Version`] runs, so matching subsets are indistinguishable — in
//! bits *and* in the modeled report.

use qgpu_circuit::generators::Benchmark;
use qgpu_statevec::StateVector;

use super::assert_bitwise_eq;
use crate::config::{OptFlags, SimConfig, Version};
use crate::engine::Simulator;

#[test]
fn explicit_opts_are_indistinguishable_from_their_version() {
    // Each streaming version is just a named flag subset: configuring
    // the same subset explicitly must give the identical run.
    let c = Benchmark::Iqp.generate(10);
    for v in [
        Version::Naive,
        Version::Overlap,
        Version::Pruning,
        Version::Reorder,
        Version::QGpu,
    ] {
        let named = Simulator::new(SimConfig::scaled_paper(10).with_version(v)).run(&c);
        let explicit = Simulator::new(
            SimConfig::scaled_paper(10)
                .with_version(v)
                .with_opts(v.opt_flags()),
        )
        .run(&c);
        assert_bitwise_eq(
            named.state.as_ref().expect("collected"),
            explicit.state.as_ref().expect("collected"),
        );
        assert_eq!(named.report.total_time, explicit.report.total_time, "{v}");
        assert_eq!(named.report.bytes_h2d, explicit.report.bytes_h2d, "{v}");
        assert_eq!(named.report.bytes_d2h, explicit.report.bytes_d2h, "{v}");
    }
}

#[test]
fn explicit_empty_opts_turn_baseline_into_naive() {
    // An explicit subset always selects the streaming pipeline — even
    // under Version::Baseline, whose static mode only applies when no
    // subset is given. The empty subset is exactly Naive.
    let c = Benchmark::Qft.generate(10);
    let naive = Simulator::new(SimConfig::scaled_paper(10).with_version(Version::Naive)).run(&c);
    let explicit = Simulator::new(
        SimConfig::scaled_paper(10)
            .with_version(Version::Baseline)
            .with_opts(OptFlags::default()),
    )
    .run(&c);
    assert_bitwise_eq(
        naive.state.as_ref().expect("collected"),
        explicit.state.as_ref().expect("collected"),
    );
    assert_eq!(naive.report.total_time, explicit.report.total_time);
    assert_eq!(naive.report.bytes_h2d, explicit.report.bytes_h2d);
}

#[test]
fn arbitrary_subsets_compose_and_stay_correct() {
    // Subsets no named version covers (e.g. pruning+compression without
    // overlap) must run end to end and compute the right state.
    let c = Benchmark::Iqp.generate(10);
    let mut reference = StateVector::new_zero(10);
    reference.run(&c);
    for bits in [0b1010u8, 0b0110, 0b1001, 0b1100] {
        let f = OptFlags::from_bits(bits);
        let r = Simulator::new(SimConfig::scaled_paper(10).with_opts(f)).run(&c);
        let dev = r.state.expect("collected").max_deviation(&reference);
        assert!(dev < 1e-10, "{f}: deviation {dev}");
    }
    // The pruning subsets actually prune on a late-involving circuit.
    let pruned = Simulator::new(
        SimConfig::scaled_paper(10).with_opts(OptFlags::parse("pruning+compression").unwrap()),
    )
    .run(&c);
    assert!(pruned.report.chunks_pruned > 0);
    assert!(pruned.report.compression_ratio() >= 1.0);
}

#[test]
fn batching_composes_with_explicit_subsets() {
    // Gate batching is a pipeline-shape change orthogonal to the flag
    // subset; it must stay bit-exact under any explicit subset too.
    let c = Benchmark::Qft.generate(10);
    let mut reference = StateVector::new_zero(10);
    reference.run(&c);
    for bits in [0b0000u8, 0b0011, 0b1011] {
        let f = OptFlags::from_bits(bits);
        let r = Simulator::new(
            SimConfig::scaled_paper(10)
                .with_opts(f)
                .with_gate_batching(),
        )
        .run(&c);
        let dev = r.state.expect("collected").max_deviation(&reference);
        assert!(dev < 1e-10, "{f}+batching: deviation {dev}");
    }
}
