//! Resilient multi-device orchestration: device loss, work stealing,
//! link degradation and memory-pressure budgets stay bit-exact (or fail
//! with a typed error when no device survives).

use qgpu_circuit::generators::Benchmark;
use qgpu_device::Platform;
use qgpu_faults::{FaultConfig, SimError};
use qgpu_sched::devicegroup::OrchestratorConfig;

use super::assert_bitwise_eq;
use crate::config::{SimConfig, Version};
use crate::engine::Simulator;

/// A miniaturized `d`-device fleet at the paper's residency ratio.
fn fleet_cfg(n: usize, d: usize, v: Version) -> SimConfig {
    let p = Platform::scaled_paper_p100(n).with_devices(d);
    SimConfig::new(p).with_version(v)
}

#[test]
fn orchestrated_fault_free_run_matches_plain_and_never_migrates() {
    // Turning orchestration on without any fault or budget must be
    // invisible: same modeled time, same bytes, zero migrations.
    let n = 11;
    let c = Benchmark::Qft.generate(n);
    for v in [Version::Overlap, Version::QGpu] {
        let plain = Simulator::new(fleet_cfg(n, 4, v)).run(&c);
        let orch =
            Simulator::new(fleet_cfg(n, 4, v).with_orchestration(OrchestratorConfig::default()))
                .run(&c);
        assert_bitwise_eq(
            plain.state.as_ref().expect("collected"),
            orch.state.as_ref().expect("collected"),
        );
        assert_eq!(
            plain.report.total_time, orch.report.total_time,
            "{v}: orchestration changed fault-free modeled time"
        );
        assert_eq!(orch.report.devices_lost, 0);
        assert_eq!(orch.report.chunks_migrated, 0);
        assert_eq!(orch.report.steals, 0, "{v}: healthy run migrated work");
        assert_eq!(orch.report.pressure_downshifts, 0);
    }
}

#[test]
fn device_loss_recovers_bit_exactly_with_modeled_cost() {
    let n = 12;
    let c = Benchmark::Qft.generate(n);
    for v in [Version::Naive, Version::Overlap, Version::QGpu] {
        let clean = Simulator::new(fleet_cfg(n, 4, v)).run(&c);
        let faults = FaultConfig {
            device_lost_at: 5,
            device_lost_id: 1,
            ..FaultConfig::default()
        };
        let lossy = Simulator::new(fleet_cfg(n, 4, v).with_faults(faults))
            .try_run(&c)
            .expect("three survivors must absorb one loss");
        assert_bitwise_eq(
            clean.state.as_ref().expect("collected"),
            lossy.state.as_ref().expect("collected"),
        );
        assert_eq!(lossy.report.devices_lost, 1, "{v}");
        assert!(
            lossy.report.total_time > clean.report.total_time,
            "{v}: recovery must cost modeled time ({} vs {})",
            lossy.report.total_time,
            clean.report.total_time
        );
    }
}

#[test]
fn device_loss_mid_run_migrates_replay_work() {
    // Lose a device deep enough into the run that its since-barrier
    // log is non-empty: the replay shows up as migrated chunks.
    let n = 12;
    let c = Benchmark::Qft.generate(n);
    let faults = FaultConfig {
        device_lost_at: 20,
        device_lost_id: 2,
        ..FaultConfig::default()
    };
    let lossy = Simulator::new(fleet_cfg(n, 4, Version::Overlap).with_faults(faults))
        .try_run(&c)
        .expect("survivors absorb the loss");
    assert_eq!(lossy.report.devices_lost, 1);
    assert!(
        lossy.report.chunks_migrated > 0,
        "no chunks migrated on a mid-run loss"
    );
}

#[test]
fn losing_the_only_device_is_a_typed_error() {
    let c = Benchmark::Qft.generate(10);
    let faults = FaultConfig {
        device_lost_at: 3,
        device_lost_id: 0,
        ..FaultConfig::default()
    };
    let err = Simulator::new(fleet_cfg(10, 1, Version::Overlap).with_faults(faults))
        .try_run(&c)
        .expect_err("no survivors: the run cannot continue");
    assert!(
        matches!(err, SimError::AllDevicesLost { device: 0 }),
        "unexpected error: {err}"
    );
}

#[test]
fn straggler_triggers_steals_and_stays_bit_exact() {
    let n = 12;
    let c = Benchmark::Qft.generate(n);
    let clean = Simulator::new(fleet_cfg(n, 4, Version::Overlap)).run(&c);
    let faults = FaultConfig {
        straggler_device: 1,
        slowdown_factor: 8.0,
        ..FaultConfig::default()
    };
    let slow = Simulator::new(fleet_cfg(n, 4, Version::Overlap).with_faults(faults))
        .try_run(&c)
        .expect("a straggler is not fatal");
    assert_bitwise_eq(
        clean.state.as_ref().expect("collected"),
        slow.state.as_ref().expect("collected"),
    );
    assert!(
        slow.report.steals > 0,
        "an 8x straggler must shed work to its peers"
    );
    assert_eq!(slow.report.devices_lost, 0);
}

#[test]
fn link_degradation_counts_and_stays_bit_exact() {
    let n = 11;
    let c = Benchmark::Qft.generate(n);
    let clean = Simulator::new(fleet_cfg(n, 2, Version::Overlap)).run(&c);
    let faults = FaultConfig {
        p_link_degraded: 0.05,
        link_degrade_factor: 4.0,
        ..FaultConfig::default()
    };
    let degraded = Simulator::new(fleet_cfg(n, 2, Version::Overlap).with_faults(faults))
        .try_run(&c)
        .expect("degraded links only slow the run");
    assert_bitwise_eq(
        clean.state.as_ref().expect("collected"),
        degraded.state.as_ref().expect("collected"),
    );
    assert!(degraded.report.link_degradations > 0);
    assert!(degraded.report.total_time > clean.report.total_time);
}

#[test]
fn memory_budget_degrades_but_never_exceeds_the_budget() {
    let n = 12;
    let c = Benchmark::Qft.generate(n);
    let clean = Simulator::new(fleet_cfg(n, 2, Version::Overlap)).run(&c);
    // A budget of four base chunks per device: tight enough to bind
    // on a fleet whose window would otherwise hold more.
    let chunk_bytes = 16u64 << fleet_cfg(n, 2, Version::Overlap).chunk_bits_for(n);
    let budget = 4 * chunk_bytes;
    let tight = Simulator::new(fleet_cfg(n, 2, Version::Overlap).with_mem_budget(budget))
        .try_run(&c)
        .expect("pressure degrades, never fails");
    assert_bitwise_eq(
        clean.state.as_ref().expect("collected"),
        tight.state.as_ref().expect("collected"),
    );
    assert!(
        tight.report.peak_resident_bytes <= budget,
        "peak residency {} exceeded budget {budget}",
        tight.report.peak_resident_bytes
    );
    assert!(tight.report.peak_resident_bytes > 0);
}
