//! Cooperative cancellation: a tripped token stops the run at the next
//! gate boundary, releases its resident chunks, and still reports the
//! partial per-stage timings gathered before the abort.

use std::sync::Arc;

use qgpu_circuit::generators::Benchmark;
use qgpu_faults::{CancelToken, SimError};
use qgpu_obs::Recorder;

use crate::config::{SimConfig, Version};
use crate::engine::pipeline;

fn run_cancelled(cfg: SimConfig, trip_at: u64) -> (SimError, Arc<Recorder>) {
    let c = Benchmark::Qft.generate(10);
    let cfg = cfg.with_cancel(CancelToken::cancelled_at(trip_at));
    let rec = Arc::new(Recorder::new().with_flight(256));
    let err =
        pipeline::run(&c, &cfg, Some(&rec), None).expect_err("armed token must abort the run");
    (err, rec)
}

#[test]
fn cancelled_run_releases_chunks_and_reports_partial_timings() {
    let (err, rec) = run_cancelled(SimConfig::scaled_paper(10).with_version(Version::QGpu), 5);
    assert!(
        matches!(err, SimError::JobAborted { op: 5 }),
        "abort lands exactly at the armed gate boundary: {err}"
    );

    // The abort is a fault-class flight event naming the chunks the run
    // releases — after five QFT gates amplitude has spread, so the
    // count is nonzero.
    let events = rec.flight_events();
    let abort = events
        .iter()
        .find(|e| e.kind == "abort")
        .expect("abort flight event");
    assert!(
        abort.detail.contains("releasing"),
        "abort names what it releases: {}",
        abort.detail
    );
    let released: usize = abort
        .detail
        .split_whitespace()
        .find_map(|w| w.parse().ok())
        .expect("released-chunk count in detail");
    assert!(released > 0, "a mid-run abort holds resident chunks");
    assert!(rec.flight_triggered(), "abort trips the post-mortem latch");

    // Partial stage timings: the five completed gates flushed their
    // per-stage wall-clock attribution before the abort returned.
    let counters = rec.metrics().counters;
    assert!(
        counters
            .iter()
            .any(|(n, v)| n == "cancel.aborts" && *v == 1),
        "abort counter recorded: {counters:?}"
    );
    let snap = rec.registry().snapshot();
    let stage_samples: u64 = snap
        .histograms_named("stage.time_ns")
        .map(|e| e.value.count)
        .sum();
    assert!(
        stage_samples > 0,
        "partial per-stage timings must be flushed on abort"
    );
    let gates: u64 = snap
        .histograms_named("gate.ns")
        .map(|e| e.value.count)
        .sum();
    assert_eq!(gates, 5, "exactly the gates before the boundary completed");
}

#[test]
fn static_mode_honors_the_token_too() {
    let (err, rec) = run_cancelled(
        SimConfig::scaled_paper(10).with_version(Version::Baseline),
        3,
    );
    assert!(matches!(err, SimError::JobAborted { op: 3 }));
    assert!(rec.flight_events().iter().any(|e| e.kind == "abort"));
    let snap = rec.registry().snapshot();
    let gates: u64 = snap
        .histograms_named("gate.ns")
        .map(|e| e.value.count)
        .sum();
    assert_eq!(gates, 3);
}

#[test]
fn deadline_trip_surfaces_as_deadline_exceeded() {
    let c = Benchmark::Qft.generate(8);
    let token = CancelToken::new();
    token.expire();
    let cfg = SimConfig::scaled_paper(8)
        .with_version(Version::QGpu)
        .with_cancel(token);
    let err = pipeline::run(&c, &cfg, None, None).unwrap_err();
    assert!(matches!(err, SimError::DeadlineExceeded { op: 0 }));
}

#[test]
fn untripped_token_is_free_and_bit_exact() {
    let c = Benchmark::Qft.generate(10);
    let clean =
        crate::engine::Simulator::new(SimConfig::scaled_paper(10).with_version(Version::QGpu))
            .run(&c);
    let tokened = crate::engine::Simulator::new(
        SimConfig::scaled_paper(10)
            .with_version(Version::QGpu)
            .with_cancel(CancelToken::new()),
    )
    .run(&c);
    super::assert_bitwise_eq(
        clean.state.as_ref().expect("collected"),
        tokened.state.as_ref().expect("collected"),
    );
}
