//! Fault injection, CRC integrity and checkpoint/resume: every injected
//! fault is either absorbed bit-exactly (with its modeled time cost) or
//! surfaces as a typed error.

use qgpu_circuit::generators::Benchmark;
use qgpu_faults::{FaultConfig, SimError};

use super::assert_bitwise_eq;
use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::result::RunResult;

#[test]
fn seeded_injection_is_absorbed_bit_exactly() {
    // Transfer corruption, codec failures, mask corruption and stage
    // slowdowns at realistic rates: the run completes, the state is
    // bit-identical to the fault-free run, and every recovery shows
    // up in the report with its modeled time cost.
    let c = Benchmark::Qft.generate(12);
    let clean = Simulator::new(SimConfig::scaled_paper(12).with_version(Version::QGpu)).run(&c);
    let faults = FaultConfig {
        seed: 42,
        p_transfer_corrupt: 0.01,
        p_codec_fail: 0.02,
        p_mask_corrupt: 0.1,
        p_stage_slowdown: 0.02,
        ..FaultConfig::default()
    };
    let faulty = Simulator::new(
        SimConfig::scaled_paper(12)
            .with_version(Version::QGpu)
            .with_faults(faults),
    )
    .try_run(&c)
    .expect("faults at these rates must be absorbed");
    assert_bitwise_eq(
        clean.state.as_ref().expect("collected"),
        faulty.state.as_ref().expect("collected"),
    );
    assert!(faulty.report.chunk_retries > 0, "no transfer retries fired");
    assert!(
        faulty.report.codec_fallbacks > 0,
        "no codec fallbacks fired"
    );
    assert!(
        faulty.report.prune_fallbacks > 0,
        "no prune fallbacks fired"
    );
    assert!(
        faulty.report.total_time > clean.report.total_time,
        "recoveries must cost modeled time: {} vs {}",
        faulty.report.total_time,
        clean.report.total_time
    );
}

#[test]
fn injection_is_deterministic_per_seed() {
    let c = Benchmark::Iqp.generate(11);
    let faults = FaultConfig {
        seed: 7,
        p_transfer_corrupt: 0.02,
        p_codec_fail: 0.02,
        ..FaultConfig::default()
    };
    let run = || {
        Simulator::new(
            SimConfig::scaled_paper(11)
                .with_version(Version::QGpu)
                .with_faults(faults),
        )
        .try_run(&c)
        .expect("absorbed")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.report.total_time, b.report.total_time);
    assert_eq!(a.report.chunk_retries, b.report.chunk_retries);
    assert_eq!(a.report.codec_fallbacks, b.report.codec_fallbacks);
    assert!(a.report.chunk_retries > 0);
}

#[test]
fn injected_worker_deaths_recover_in_the_engine_loop() {
    // 15 qubits so per-op dispatches cross the executor's parallel
    // threshold and the worker pool actually runs (and dies).
    let c = Benchmark::Qft.generate(15);
    let base = SimConfig::scaled_paper(15)
        .with_version(Version::QGpu)
        .with_threads(4);
    let clean = Simulator::new(base.clone()).run(&c);
    let faults = FaultConfig {
        seed: 9,
        p_worker_death: 0.05,
        ..FaultConfig::default()
    };
    let faulty = Simulator::new(base.with_faults(faults))
        .try_run(&c)
        .expect("worker deaths must be recovered");
    assert_bitwise_eq(
        clean.state.as_ref().expect("collected"),
        faulty.state.as_ref().expect("collected"),
    );
    assert!(
        faulty.report.worker_restarts > 0,
        "no worker deaths injected at 15 qubits / 5%"
    );
}

#[test]
fn integrity_checks_alone_change_nothing() {
    // CRC sealing/verification without injected faults: same bits,
    // same modeled timing, zero recovery events.
    let c = Benchmark::Qaoa.generate(12);
    for v in [Version::Naive, Version::QGpu] {
        let plain = Simulator::new(SimConfig::scaled_paper(12).with_version(v)).run(&c);
        let checked = Simulator::new(
            SimConfig::scaled_paper(12)
                .with_version(v)
                .with_integrity_checks(),
        )
        .run(&c);
        assert_eq!(plain.report.total_time, checked.report.total_time);
        assert_eq!(plain.report.bytes_h2d, checked.report.bytes_h2d);
        assert_eq!(plain.report.bytes_d2h, checked.report.bytes_d2h);
        assert_eq!(checked.report.chunk_retries, 0);
        assert_eq!(checked.report.codec_fallbacks, 0);
        assert_bitwise_eq(
            plain.state.as_ref().expect("collected"),
            checked.state.as_ref().expect("collected"),
        );
    }
}

#[test]
fn injected_fatal_checkpoints_and_resumes_bit_exactly() {
    let c = Benchmark::Iqp.generate(10);
    let base = SimConfig::scaled_paper(10).with_version(Version::QGpu);
    let clean = Simulator::new(base.clone()).run(&c);
    let path = std::env::temp_dir().join(format!("qgpu_resume_test_{}.ckpt", std::process::id()));
    let path = path.to_str().expect("utf-8 temp path").to_string();

    let kill_at = c.len() / 2;
    let faults = FaultConfig {
        fail_at_gate: kill_at,
        ..FaultConfig::default()
    };
    let err = Simulator::new(
        base.clone()
            .with_faults(faults)
            .with_checkpointing(5, &path),
    )
    .try_run(&c)
    .expect_err("fatal fault must abort the run");
    assert!(
        matches!(err, SimError::Fatal { gate, .. } if gate == kill_at),
        "unexpected error: {err}"
    );

    let ck = crate::checkpoint::load_with_progress(&path).expect("checkpoint written");
    assert!(ck.gates_done > 0 && ck.gates_done <= kill_at as u64);
    let resumed = Simulator::new(base)
        .try_run_from(&c, Some(&ck))
        .expect("resume");
    assert_bitwise_eq(
        clean.state.as_ref().expect("collected"),
        resumed.state.as_ref().expect("collected"),
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_rejects_mismatched_checkpoints() {
    let c = Benchmark::Qft.generate(10);
    let base = SimConfig::scaled_paper(10).with_version(Version::QGpu);
    // Wrong qubit count.
    let ck = crate::checkpoint::Checkpoint {
        state: qgpu_statevec::StateVector::new_zero(8),
        gates_done: 1,
    };
    assert!(matches!(
        Simulator::new(base.clone()).try_run_from(&c, Some(&ck)),
        Err(SimError::Checkpoint(_))
    ));
    // Progress beyond the end of the program.
    let ck = crate::checkpoint::Checkpoint {
        state: qgpu_statevec::StateVector::new_zero(10),
        gates_done: c.len() as u64 + 1,
    };
    assert!(matches!(
        Simulator::new(base).try_run_from(&c, Some(&ck)),
        Err(SimError::Checkpoint(_))
    ));
}

#[test]
fn exhausted_retries_surface_as_chunk_corrupt() {
    // Certain corruption on every attempt: the retry budget runs out
    // and the typed error escapes instead of a hang or a panic.
    let c = Benchmark::Qft.generate(9);
    let faults = FaultConfig {
        p_transfer_corrupt: 1.0,
        ..FaultConfig::default()
    };
    let err = Simulator::new(
        SimConfig::scaled_paper(9)
            .with_version(Version::Naive)
            .with_faults(faults),
    )
    .try_run(&c)
    .expect_err("certain corruption must exhaust retries");
    assert!(
        matches!(err, SimError::ChunkCorrupt { attempts, .. } if attempts > 1),
        "unexpected error: {err}"
    );
}

#[test]
fn resumed_compressed_run_pays_no_arrival_retags() {
    // Satellite regression: every compressed chunk's tag is sealed at
    // encode time and travels with the data — a resumed Q-GPU run
    // (whose tag cache starts empty) must not re-tag on arrival, and
    // must stay bit-exact. An uncompressed run pays honest re-tags.
    let n = 10;
    let c = Benchmark::Qft.generate(n);
    let dir = std::env::temp_dir().join(format!("qgpu-retag-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let ckpt = dir.join("retag.ckpt");
    let retags = |r: &RunResult| -> u64 {
        r.obs
            .as_ref()
            .expect("obs enabled")
            .metrics
            .counters
            .iter()
            .find(|(name, _)| name == "integrity.retags")
            .map_or(0, |&(_, v)| v)
    };
    let base = |v: Version| {
        SimConfig::scaled_paper(n)
            .with_version(v)
            .with_obs_spans()
            .with_integrity_checks()
            .with_checkpointing(10, ckpt.to_str().expect("utf8 path"))
    };
    let clean = Simulator::new(base(Version::QGpu)).run(&c);

    // Kill the run mid-way, then resume from the checkpoint.
    let faults = FaultConfig {
        fail_at_gate: 25,
        ..FaultConfig::default()
    };
    let err = Simulator::new(base(Version::QGpu).with_faults(faults)).try_run(&c);
    assert!(matches!(err, Err(SimError::Fatal { .. })));
    let ck = crate::checkpoint::load_with_progress(ckpt.to_str().expect("utf8 path"))
        .expect("checkpoint written");
    let resumed = Simulator::new(base(Version::QGpu))
        .try_run_from(&c, Some(&ck))
        .expect("resume");
    assert_bitwise_eq(
        clean.state.as_ref().expect("collected"),
        resumed.state.as_ref().expect("collected"),
    );
    assert_eq!(
        retags(&resumed),
        0,
        "compressed chunks must never re-tag on arrival"
    );
    // The uncompressed control run pays real arrival re-tags.
    let control = Simulator::new(base(Version::Overlap)).run(&c);
    assert!(retags(&control) > 0, "raw transfers must re-tag");
    std::fs::remove_dir_all(&dir).ok();
}
