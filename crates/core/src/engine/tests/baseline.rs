//! The paper's §III-B baseline: static chunk allocation, CPU updates for
//! host-resident chunks, reactive synchronous exchange.

use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::Circuit;
use qgpu_device::Platform;

use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::result::RunResult;

fn run_cfg(c: &Circuit, cfg: SimConfig) -> RunResult {
    Simulator::new(cfg.with_version(Version::Baseline)).run(c)
}

#[test]
fn capacity_exceeded_is_host_dominated() {
    // The paper's Figure 2: ~89% CPU time, ~10% exchange, ~1% GPU.
    let c = Benchmark::Qft.generate(12);
    let r = run_cfg(&c, SimConfig::scaled_paper(12));
    assert!(
        r.report.host_fraction() > 0.6,
        "host fraction {:.2} too small",
        r.report.host_fraction()
    );
    assert!(r.report.gpu_fraction() < 0.2);
}

#[test]
fn state_fits_gpu_runs_entirely_on_gpu() {
    // Below 30 qubits (here: GPU memory not scaled down) the whole
    // state fits and the baseline uses only the GPU.
    let c = Benchmark::Qft.generate(10);
    let r = run_cfg(&c, SimConfig::new(Platform::paper_p100()));
    assert_eq!(r.report.host_time, 0.0);
    assert_eq!(r.report.bytes_h2d, 0);
    assert!(r.report.gpu_time > 0.0);
}

#[test]
fn exchange_happens_only_with_cross_boundary_mixing() {
    // A circuit of purely chunk-local gates never exchanges.
    let mut c = Circuit::new(10);
    for q in 0..3 {
        c.h(q);
    }
    c.cx(0, 1).cz(1, 2);
    let r = run_cfg(&c, SimConfig::scaled_paper(10));
    assert_eq!(r.report.bytes_h2d, 0, "no mixed groups expected");
}

#[test]
fn functional_state_is_correct() {
    let c = Benchmark::Gs.generate(9);
    let r = run_cfg(&c, SimConfig::scaled_paper(9));
    let mut reference = qgpu_statevec::StateVector::new_zero(9);
    reference.run(&c);
    assert!(r.state.expect("collected").max_deviation(&reference) < 1e-10);
}

#[test]
fn sync_time_accumulates_per_gate() {
    let c = Benchmark::Bv.generate(8);
    let r = run_cfg(&c, SimConfig::scaled_paper(8));
    let expected = c.len() as f64 * Platform::scaled_paper_p100(8).host.sync_latency;
    assert!((r.report.sync_time - expected).abs() < 1e-9);
}
