//! The streaming versions' modeled behavior: overlap, pruning,
//! compression, gate batching, tracing and multi-GPU scaling.

use qgpu_circuit::generators::Benchmark;
use qgpu_device::Platform;

use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::result::RunResult;

fn run_version(b: Benchmark, n: usize, v: Version) -> RunResult {
    let c = b.generate(n);
    Simulator::new(SimConfig::scaled_paper(n).with_version(v)).run(&c)
}

#[test]
fn naive_moves_the_whole_state_per_gate() {
    let n = 10;
    let c = Benchmark::Qft.generate(n);
    let r = Simulator::new(SimConfig::scaled_paper(n).with_version(Version::Naive)).run(&c);
    // Every gate uploads and downloads every byte of the state.
    let state_bytes = (1u64 << n) * 16;
    assert_eq!(r.report.bytes_h2d, state_bytes * c.len() as u64);
    assert_eq!(r.report.bytes_d2h, state_bytes * c.len() as u64);
    assert_eq!(r.report.host_time, 0.0);
}

#[test]
fn overlap_beats_naive_with_same_bytes() {
    let naive = run_version(Benchmark::Qft, 11, Version::Naive);
    let overlap = run_version(Benchmark::Qft, 11, Version::Overlap);
    assert_eq!(naive.report.bytes_h2d, overlap.report.bytes_h2d);
    assert!(
        overlap.report.total_time < 0.8 * naive.report.total_time,
        "overlap {:.4} vs naive {:.4}",
        overlap.report.total_time,
        naive.report.total_time
    );
}

#[test]
fn pruning_reduces_bytes_on_late_involving_circuits() {
    let overlap = run_version(Benchmark::Iqp, 12, Version::Overlap);
    let pruning = run_version(Benchmark::Iqp, 12, Version::Pruning);
    assert!(
        pruning.report.bytes_h2d < overlap.report.bytes_h2d / 2,
        "pruning {} vs overlap {}",
        pruning.report.bytes_h2d,
        overlap.report.bytes_h2d
    );
    assert!(pruning.report.chunks_pruned > 0);
}

#[test]
fn pruning_barely_helps_qft() {
    // Paper: qft involves all qubits immediately; pruning is weak.
    let overlap = run_version(Benchmark::Qft, 12, Version::Overlap);
    let pruning = run_version(Benchmark::Qft, 12, Version::Pruning);
    let saving = 1.0 - pruning.report.bytes_h2d as f64 / overlap.report.bytes_h2d.max(1) as f64;
    assert!(saving < 0.35, "qft pruning saving {saving:.2} too large");
}

#[test]
fn compression_reduces_transfer_on_smooth_states() {
    // qaoa's repetitive amplitudes compress well (paper Figure 10);
    // 15 qubits so chunks carry enough GFC prediction context (the
    // exact ratio depends on the random graph the generator draws, and
    // at 14 qubits it hovers right at the threshold).
    let reorder = run_version(Benchmark::Qaoa, 15, Version::Reorder);
    let qgpu = run_version(Benchmark::Qaoa, 15, Version::QGpu);
    assert!(
        qgpu.report.bytes_d2h < reorder.report.bytes_d2h,
        "compression should reduce D2H bytes: {} vs {}",
        qgpu.report.bytes_d2h,
        reorder.report.bytes_d2h
    );
    assert!(qgpu.report.compression_ratio() > 1.2);
}

#[test]
fn compression_overhead_is_bounded() {
    // Paper Figure 14: compress ~3.3%, decompress ~2.8% of exec time.
    let qgpu = run_version(Benchmark::Qaoa, 14, Version::QGpu);
    assert!(
        qgpu.report.compression_overhead() < 0.25,
        "overhead {:.3}",
        qgpu.report.compression_overhead()
    );
}

#[test]
fn states_identical_across_streaming_versions() {
    let c = Benchmark::Hlf.generate(10);
    let reference = {
        let mut s = qgpu_statevec::StateVector::new_zero(10);
        s.run(&c);
        s
    };
    for v in [
        Version::Naive,
        Version::Overlap,
        Version::Pruning,
        Version::Reorder,
        Version::QGpu,
    ] {
        let r = Simulator::new(SimConfig::scaled_paper(10).with_version(v)).run(&c);
        let dev = r.state.expect("collected").max_deviation(&reference);
        assert!(dev < 1e-10, "{v}: deviation {dev}");
    }
}

#[test]
fn multi_gpu_scales_streaming_until_host_dma_saturates() {
    let c = Benchmark::Qft.generate(12);
    // P4 server: 4 x PCIe (54 GB/s aggregate) against a 45 GB/s host
    // DMA path -> ~3.3x scaling, like the paper's ~3x.
    let quad = Simulator::new(
        SimConfig::new(Platform::quad_p4_pcie().miniaturize(12, 0.05))
            .with_version(Version::Overlap),
    );
    let mut one_gpu_platform = Platform::quad_p4_pcie().miniaturize(12, 0.05);
    one_gpu_platform.gpus.truncate(1);
    one_gpu_platform.links.truncate(1);
    let single_gpu =
        Simulator::new(SimConfig::new(one_gpu_platform).with_version(Version::Overlap));
    let t4 = quad.run(&c).report.total_time;
    let t1 = single_gpu.run(&c).report.total_time;
    let scaling = t1 / t4;
    assert!(
        (2.0..4.2).contains(&scaling),
        "4xP4 scaling {scaling:.2}x should approach but not exceed 4x"
    );
}

#[test]
fn gate_batching_preserves_state_and_reduces_transfers() {
    for b in [Benchmark::Qft, Benchmark::Iqp, Benchmark::Hchain] {
        let c = b.generate(11);
        let plain = Simulator::new(SimConfig::scaled_paper(11).with_version(Version::QGpu)).run(&c);
        let batched = Simulator::new(
            SimConfig::scaled_paper(11)
                .with_version(Version::QGpu)
                .with_gate_batching(),
        )
        .run(&c);
        let dev = batched
            .state
            .expect("collected")
            .max_deviation(plain.state.as_ref().expect("collected"));
        assert!(dev < 1e-10, "{b}: batching changed the state ({dev})");
        assert!(
            batched.report.bytes_h2d < plain.report.bytes_h2d,
            "{b}: batching must reduce uploads ({} vs {})",
            batched.report.bytes_h2d,
            plain.report.bytes_h2d
        );
        assert!(
            batched.report.total_time <= plain.report.total_time * 1.02,
            "{b}: batching must not slow execution"
        );
    }
}

#[test]
fn gate_batching_handles_cross_boundary_gates() {
    // A circuit alternating local and high-mixing gates exercises
    // batch flushing around Case-2 gates.
    let mut c = qgpu_circuit::Circuit::new(10);
    for q in 0..10 {
        c.h(q);
    }
    c.cx(0, 9).t(1).swap(2, 9).rz(0.3, 0).cx(9, 1);
    let mut reference = qgpu_statevec::StateVector::new_zero(10);
    reference.run(&c);
    for v in [Version::Naive, Version::Overlap, Version::QGpu] {
        let r = Simulator::new(
            SimConfig::scaled_paper(10)
                .with_version(v)
                .with_gate_batching(),
        )
        .run(&c);
        let dev = r.state.expect("collected").max_deviation(&reference);
        assert!(dev < 1e-10, "{v}: deviation {dev}");
    }
}

#[test]
fn trace_events_recorded() {
    let c = Benchmark::Gs.generate(8);
    let cfg = SimConfig::scaled_paper(8)
        .with_version(Version::Overlap)
        .with_trace(500);
    let r = Simulator::new(cfg).run(&c);
    assert!(!r.trace.is_empty());
    assert!(r.trace.len() <= 500);
}
