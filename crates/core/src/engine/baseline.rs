//! The baseline engine: Qiskit-Aer-style static allocation (paper §III-B).
//!
//! Chunks `0..resident` are pinned in GPU memory (striped round-robin
//! across devices on multi-GPU platforms); the rest live on the host. Per
//! gate:
//!
//! * chunk tasks entirely on one device update there (GPU kernel or the
//!   host's *chunked* update path, which is slower than a plain loop —
//!   see [`qgpu_device::HostSpec::chunk_penalty`]);
//! * mixed tasks trigger the paper's **reactive chunk exchange**: the
//!   off-device members are copied in, the group updated, and the members
//!   copied back — synchronously, one task at a time;
//! * every gate ends with a host↔device synchronization.
//!
//! This reproduces the paper's Figure 2: with a large state vector almost
//! all time is CPU update, roughly 10% is exchange, and the GPU is idle.

use std::sync::Arc;

use qgpu_circuit::Circuit;
use qgpu_device::timeline::{Engine, TaskKind, Timeline};
use qgpu_device::ExecutionReport;
use qgpu_faults::{FaultInjector, SimError};
use qgpu_obs::{span_opt, Recorder, Stage, Track};
use qgpu_sched::devicegroup::DeviceGroup;
use qgpu_sched::plan::{ChunkTask, GatePlan};
use qgpu_statevec::{ChunkExecutor, ChunkedState};

use crate::checkpoint::Checkpoint;
use crate::config::SimConfig;
use crate::engine::flops_per_amp;
use crate::engine::streaming::copy_with_dma;
use crate::result::RunResult;

/// Where a chunk lives under the striped static allocation.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Loc {
    Host,
    Gpu(usize),
}

pub(crate) fn run(
    circuit: &Circuit,
    cfg: &SimConfig,
    recorder: Option<&Arc<Recorder>>,
    resume: Option<&Checkpoint>,
) -> Result<RunResult, SimError> {
    let rec = recorder.map(Arc::as_ref);
    let n = circuit.num_qubits();
    let chunk_bits = cfg.chunk_bits_for(n);
    let num_chunks = 1usize << (n as u32 - chunk_bits);
    let chunk_bytes = 16u64 << chunk_bits;
    let num_gpus = cfg.platform.num_gpus();

    // Static allocation: as many chunks as fit, striped across GPUs. A
    // configured residency budget caps each device below its hardware
    // capacity — the baseline's only degradation rung is keeping fewer
    // chunks resident (everything else already lives on the host).
    let ocfg = cfg.effective_orchestration();
    let budget = ocfg.and_then(|o| o.mem_budget_bytes);
    let mut budget_capped = 0u64;
    let per_gpu_cap: Vec<usize> = (0..num_gpus)
        .map(|g| {
            let hw = cfg.platform.gpu_chunk_capacity(g, chunk_bytes);
            match budget {
                Some(b) => {
                    let cap = (((b / chunk_bytes.max(1)) as usize).max(1)).min(hw);
                    if cap < hw {
                        budget_capped += 1;
                    }
                    cap
                }
                None => hw,
            }
        })
        .collect();
    let resident: usize = per_gpu_cap.iter().sum::<usize>().min(num_chunks);
    // Where a chunk lives, given which devices are still alive: a dead
    // device's stripe re-homes to the host.
    let loc = |chunk: usize, alive: &[bool]| -> Loc {
        if chunk < resident {
            let g = chunk % num_gpus;
            if alive[g] {
                Loc::Gpu(g)
            } else {
                Loc::Host
            }
        } else {
            Loc::Host
        }
    };
    let mut alive = vec![true; num_gpus];

    let program = {
        let _g = span_opt(rec, Track::Main, Stage::Plan, "engine.program");
        crate::engine::program_for(circuit, cfg)
    };
    let start = match resume {
        Some(ck) => {
            if ck.state.num_qubits() != n {
                return Err(SimError::Checkpoint(format!(
                    "checkpoint has {} qubits but circuit has {n}",
                    ck.state.num_qubits()
                )));
            }
            if ck.gates_done > program.len() as u64 {
                return Err(SimError::Checkpoint(format!(
                    "checkpoint is {} ops in but the program has only {}",
                    ck.gates_done,
                    program.len()
                )));
            }
            ck.gates_done as usize
        }
        None => 0,
    };
    let mut state = match resume {
        Some(ck) => ChunkedState::from_flat(&ck.state, chunk_bits),
        None => ChunkedState::new_zero(n, chunk_bits),
    };
    let mut tl = if cfg.trace_events > 0 {
        Timeline::with_trace(cfg.trace_events)
    } else {
        Timeline::new()
    };

    let host = &cfg.platform.host;
    let mut gate_ready = 0.0f64;

    // Orchestration bookkeeping: the device group tracks liveness and
    // barriers; the injector draws device-level faults. (Work-stealing
    // does not apply to a static allocation.)
    let mut group = ocfg.map(|o| {
        let mut g = DeviceGroup::new(num_gpus, o);
        // Replay logs only serve device loss; skip their per-task
        // pushes when no device fault can fire.
        g.set_replay_tracking(cfg.faults.device_faults_enabled());
        g
    });
    let mut next_barrier = ocfg.map_or(u64::MAX, |o| start as u64 + o.barrier_interval);
    let mut barriers = 0u64;
    let mut loss_fired = false;
    let dev_inj = cfg
        .faults
        .device_faults_enabled()
        .then(|| FaultInjector::new(cfg.faults));
    let mut transfer_ix = 0u64;
    if budget.is_some() {
        for _ in 0..budget_capped {
            tl.count_pressure_downshift();
            if let Some(r) = rec {
                r.add("orch.pressure_downshifts", 1);
            }
        }
        for g in 0..num_gpus {
            let cnt = (0..resident).filter(|c| c % num_gpus == g).count() as u64;
            tl.observe_resident_bytes(cnt * chunk_bytes);
        }
    }

    // A worker-death campaign honors the configured thread count exactly
    // (no clamping to the host's cores), so the multi-worker partitioning
    // paths under test run even on small machines.
    let mut executor = if cfg.faults.p_worker_death > 0.0 {
        ChunkExecutor::with_exact_threads(cfg.threads)
            .with_faults(Arc::new(FaultInjector::new(cfg.faults)))
    } else {
        ChunkExecutor::new(cfg.threads)
    };
    if let Some(arc) = recorder {
        executor = executor.with_recorder(Arc::clone(arc));
    }
    tl.set_gates_fused(qgpu_circuit::fuse::gates_fused(&program) as u64);
    let mut last_ckpt = start as u64;

    for (idx, fop) in program.iter().enumerate().skip(start) {
        if cfg.checkpoint_every > 0 && idx as u64 >= last_ckpt + cfg.checkpoint_every {
            if let Some(path) = cfg.checkpoint_path.as_deref() {
                crate::checkpoint::save_with_progress(&state.to_flat(), idx as u64, path)
                    .map_err(|e| SimError::Checkpoint(e.to_string()))?;
                last_ckpt = idx as u64;
                if let Some(r) = rec {
                    r.add("checkpoints.written", 1);
                }
            }
        }
        if idx >= cfg.faults.fail_at_gate {
            return Err(SimError::Fatal {
                gate: idx,
                reason: "injected fatal fault".to_string(),
            });
        }

        // ---- orchestration: barriers and device loss -----------------
        if let Some(gr) = group.as_mut() {
            let mut lost: Option<usize> = None;
            if !loss_fired && idx >= cfg.faults.device_lost_at {
                loss_fired = true;
                if cfg.faults.device_lost_id < num_gpus {
                    lost = Some(cfg.faults.device_lost_id);
                }
            }
            if idx as u64 >= next_barrier {
                gr.barrier();
                barriers += 1;
                next_barrier = idx as u64 + gr.config().barrier_interval;
                if let (None, Some(inj)) = (lost, dev_inj.as_ref()) {
                    lost = (0..num_gpus)
                        .find(|&d| gr.is_alive(d) && inj.device_lost_fires(d, barriers));
                }
            }
            if let Some(d) = lost {
                if gr.is_alive(d) {
                    if gr.lose_device(d).is_none() {
                        return Err(SimError::AllDevicesLost { device: d });
                    }
                    alive[d] = false;
                    // The dead device's stripe re-homes to the host;
                    // host state is authoritative, so the cost is a
                    // modeled restore from the last checkpoint barrier.
                    let moved = (0..resident).filter(|c| c % num_gpus == d).count() as u64;
                    tl.count_device_lost();
                    tl.count_chunks_migrated(moved);
                    if let Some(r) = rec {
                        r.add("orch.devices_lost", 1);
                        r.add("orch.chunks_migrated", moved);
                    }
                    let restore = tl.schedule(
                        Engine::Host,
                        gate_ready,
                        moved as f64 * chunk_bytes as f64 / host.copy_bw,
                        TaskKind::Sync,
                        moved * chunk_bytes,
                    );
                    gate_ready = restore.end;
                }
            }
        }

        let action = fop.collapsed();
        let plan = GatePlan::new_observed(action, chunk_bits, num_chunks, rec);
        let fpa = flops_per_amp(action);

        // Partition tasks: same-device batches vs. mixed groups.
        let mut host_bytes = 0u64;
        let mut gpu_bytes = vec![0u64; num_gpus];
        let mut mixed: Vec<&ChunkTask> = Vec::new();
        for task in plan.tasks() {
            let locs: Vec<Loc> = task.chunks().iter().map(|&c| loc(c, &alive)).collect();
            let bytes = task.len() as u64 * chunk_bytes;
            if locs.iter().all(|&l| l == Loc::Host) {
                host_bytes += bytes;
            } else if locs.windows(2).all(|w| w[0] == w[1]) {
                let Loc::Gpu(g) = locs[0] else { unreachable!() };
                gpu_bytes[g] += bytes;
            } else {
                mixed.push(task);
            }
            tl.count_processed(task.len() as u64);
            if let Some(r) = rec {
                r.add("chunks.processed", task.len() as u64);
                r.observe("chunk.bytes", chunk_bytes);
            }
        }

        let mut gate_end = gate_ready;
        if host_bytes > 0 {
            let t = host_bytes as f64 / host.chunked_update_bw();
            let span = tl.schedule(
                Engine::Host,
                gate_ready,
                t,
                TaskKind::HostUpdate,
                host_bytes,
            );
            gate_end = gate_end.max(span.end);
        }
        for (g, &bytes) in gpu_bytes.iter().enumerate() {
            if bytes == 0 {
                continue;
            }
            let stretch = dev_inj.as_ref().map_or(1.0, |i| i.straggler_stretch(g));
            let t = (bytes as f64 / cfg.platform.gpu(g).update_bw()
                + cfg.platform.gpu(g).kernel_launch)
                * stretch;
            let span = tl.schedule(
                Engine::GpuCompute(g),
                gate_ready,
                t,
                TaskKind::Kernel,
                bytes,
            );
            tl.add_flops((bytes as f64 / 16.0) * fpa);
            if fop.is_fused() {
                tl.count_fused_kernel();
            }
            gate_end = gate_end.max(span.end);
        }

        // Reactive exchange: mixed groups processed synchronously, one at
        // a time, on the primary GPU of the group — *after* the update
        // batches, since the scheduler blocks when it reaches the
        // boundary (the paper's Figure 2 splits the makespan into CPU
        // time then exchange time).
        let mut chain = gate_end;
        for task in &mixed {
            let primary = task
                .chunks()
                .iter()
                .find_map(|&c| match loc(c, &alive) {
                    Loc::Gpu(g) => Some(g),
                    Loc::Host => None,
                })
                .unwrap_or_else(|| alive.iter().position(|&a| a).unwrap_or(0));
            let off_device_bytes: u64 = task
                .chunks()
                .iter()
                .filter(|&&c| loc(c, &alive) != Loc::Gpu(primary))
                .count() as u64
                * chunk_bytes;
            let link = cfg.platform.link(primary);
            let link_stretch = dev_inj.as_ref().map_or(1.0, |i| {
                let s = i.link_stretch(transfer_ix);
                transfer_ix += 1;
                s
            });
            if link_stretch > 1.0 {
                tl.count_link_degradation();
                if let Some(r) = rec {
                    r.add("link.degradations", 1);
                }
            }
            let h2d = copy_with_dma(
                &mut tl,
                Engine::HostDmaOut,
                Engine::H2d(primary),
                TaskKind::H2dCopy,
                chain,
                off_device_bytes,
                link,
                cfg.platform.host.copy_bw,
                link_stretch,
            );
            let group_bytes = task.len() as u64 * chunk_bytes;
            let kt = (group_bytes as f64 / cfg.platform.gpu(primary).update_bw()
                + cfg.platform.gpu(primary).kernel_launch)
                * dev_inj
                    .as_ref()
                    .map_or(1.0, |i| i.straggler_stretch(primary));
            let kernel = tl.schedule(
                Engine::GpuCompute(primary),
                h2d.end,
                kt,
                TaskKind::Kernel,
                group_bytes,
            );
            tl.add_flops((group_bytes as f64 / 16.0) * fpa);
            if fop.is_fused() {
                tl.count_fused_kernel();
            }
            let down_stretch = dev_inj.as_ref().map_or(1.0, |i| {
                let s = i.link_stretch(transfer_ix);
                transfer_ix += 1;
                s
            });
            if down_stretch > 1.0 {
                tl.count_link_degradation();
                if let Some(r) = rec {
                    r.add("link.degradations", 1);
                }
            }
            let d2h = copy_with_dma(
                &mut tl,
                Engine::HostDmaIn,
                Engine::D2h(primary),
                TaskKind::D2hCopy,
                kernel.end,
                off_device_bytes,
                link,
                cfg.platform.host.copy_bw,
                down_stretch,
            );
            chain = d2h.end;
        }
        gate_end = gate_end.max(chain);

        // Per-gate synchronization between the scheduler and the device.
        let sync = tl.schedule(Engine::Host, gate_end, host.sync_latency, TaskKind::Sync, 0);
        gate_ready = sync.end;

        // Functional update (identical across versions): the executor
        // replays the run's member gates chunk by chunk, bitwise identical
        // to per-gate application at every thread count.
        let mut singles: Vec<usize> = Vec::new();
        let mut groups: Vec<&[usize]> = Vec::new();
        for task in plan.tasks() {
            match task {
                ChunkTask::Single(c) => singles.push(*c),
                ChunkTask::Group(g) => groups.push(g),
            }
        }
        if !singles.is_empty() {
            let _g = span_opt(rec, Track::Main, Stage::Update, "update.local");
            let restarts = executor.try_apply_local_run(&mut state, fop.actions(), &singles)?;
            if restarts > 0 {
                tl.count_worker_restarts(restarts);
                if let Some(r) = rec {
                    r.add("worker.restarts", restarts);
                }
            }
        }
        if !groups.is_empty() {
            let _g = span_opt(rec, Track::Main, Stage::Update, "update.group");
            let restarts = executor.try_apply_group_runs(
                &mut state,
                fop.actions(),
                &groups,
                plan.high_mixing(),
            )?;
            if restarts > 0 {
                tl.count_worker_restarts(restarts);
                if let Some(r) = rec {
                    r.add("worker.restarts", restarts);
                }
            }
        }
    }

    let report = ExecutionReport::from_timeline(&tl, num_gpus);
    Ok(RunResult {
        version: cfg.version,
        circuit_name: circuit.name().to_string(),
        state: cfg.collect_state.then(|| state.to_flat()),
        report,
        trace: tl.trace().to_vec(),
        obs: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Version;
    use qgpu_circuit::generators::Benchmark;
    use qgpu_device::Platform;

    fn run_cfg(c: &Circuit, cfg: SimConfig) -> RunResult {
        run(c, &cfg.with_version(Version::Baseline), None, None).expect("baseline run")
    }

    #[test]
    fn capacity_exceeded_is_host_dominated() {
        // The paper's Figure 2: ~89% CPU time, ~10% exchange, ~1% GPU.
        let c = Benchmark::Qft.generate(12);
        let r = run_cfg(&c, SimConfig::scaled_paper(12));
        assert!(
            r.report.host_fraction() > 0.6,
            "host fraction {:.2} too small",
            r.report.host_fraction()
        );
        assert!(r.report.gpu_fraction() < 0.2);
    }

    #[test]
    fn state_fits_gpu_runs_entirely_on_gpu() {
        // Below 30 qubits (here: GPU memory not scaled down) the whole
        // state fits and the baseline uses only the GPU.
        let c = Benchmark::Qft.generate(10);
        let cfg = SimConfig::new(Platform::paper_p100()).with_version(Version::Baseline);
        let r = run(&c, &cfg, None, None).expect("baseline run");
        assert_eq!(r.report.host_time, 0.0);
        assert_eq!(r.report.bytes_h2d, 0);
        assert!(r.report.gpu_time > 0.0);
    }

    #[test]
    fn exchange_happens_only_with_cross_boundary_mixing() {
        // A circuit of purely chunk-local gates never exchanges.
        let mut c = Circuit::new(10);
        for q in 0..3 {
            c.h(q);
        }
        c.cx(0, 1).cz(1, 2);
        let r = run_cfg(&c, SimConfig::scaled_paper(10));
        assert_eq!(r.report.bytes_h2d, 0, "no mixed groups expected");
    }

    #[test]
    fn functional_state_is_correct() {
        let c = Benchmark::Gs.generate(9);
        let r = run_cfg(&c, SimConfig::scaled_paper(9));
        let mut reference = qgpu_statevec::StateVector::new_zero(9);
        reference.run(&c);
        assert!(r.state.expect("collected").max_deviation(&reference) < 1e-10);
    }

    #[test]
    fn sync_time_accumulates_per_gate() {
        let c = Benchmark::Bv.generate(8);
        let r = run_cfg(&c, SimConfig::scaled_paper(8));
        let expected = c.len() as f64 * Platform::scaled_paper_p100(8).host.sync_latency;
        assert!((r.report.sync_time - expected).abs() < 1e-9);
    }
}
