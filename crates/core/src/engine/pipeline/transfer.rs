//! Shared host↔device transfer modeling: the DMA-staged copy primitive,
//! its integrity-checked (retrying) variant, and the real-codec
//! compressed-size probe.
//!
//! Every engine path — streaming stages, the gate-batching extension,
//! the static-allocation mode, and device-loss replay — routes its
//! copies through [`copy_with_dma`], so the §V-E host-DMA bottleneck is
//! modeled once.

use qgpu_compress::Codec;
use qgpu_device::timeline::{Engine, TaskKind, Timeline};
use qgpu_faults::{FaultSite, SimError};
use qgpu_math::Complex64;
use qgpu_obs::Recorder;

use super::middleware::Resilience;

/// Schedules a CPU↔GPU copy: the transfer holds its per-GPU link engine
/// for `bytes/link_bw` *and* reserves the shared host-DRAM DMA path for
/// `bytes/copy_bw`, so aggregate traffic across all GPUs never exceeds
/// what host memory can stage (the paper's §V-E observation that CPU↔GPU
/// movement, not GPU↔GPU links, bounds multi-GPU scaling).
#[allow(clippy::too_many_arguments)]
pub(crate) fn copy_with_dma(
    tl: &mut Timeline,
    dma_engine: Engine,
    link_engine: Engine,
    kind: TaskKind,
    ready: f64,
    bytes: u64,
    link: &qgpu_device::LinkSpec,
    copy_bw: f64,
    link_stretch: f64,
) -> qgpu_device::Span {
    let dma = tl.schedule(
        dma_engine,
        ready,
        bytes as f64 / copy_bw,
        TaskKind::HostDma,
        0,
    );
    tl.schedule(
        link_engine,
        dma.start,
        link.transfer_time(bytes) * link_stretch,
        kind,
        bytes,
    )
}

/// [`copy_with_dma`] under integrity checking: after each modeled
/// transfer the injector decides whether the arrival CRC matched. A
/// mismatch costs a [`TaskKind::Backoff`] span on the link engine and a
/// full retransmit; after `max_retries` consumed attempts the transfer is
/// abandoned with [`SimError::ChunkCorrupt`]. With `resil == None` this
/// is exactly `copy_with_dma`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn transfer_with_integrity(
    tl: &mut Timeline,
    dma_engine: Engine,
    link_engine: Engine,
    kind: TaskKind,
    mut ready: f64,
    bytes: u64,
    link: &qgpu_device::LinkSpec,
    copy_bw: f64,
    resil: Option<&mut Resilience>,
    rec: Option<&Recorder>,
) -> Result<qgpu_device::Span, SimError> {
    let Some(rs) = resil else {
        return Ok(copy_with_dma(
            tl,
            dma_engine,
            link_engine,
            kind,
            ready,
            bytes,
            link,
            copy_bw,
            1.0,
        ));
    };
    let index = rs.transfers;
    rs.transfers += 1;
    // An injected link degradation stretches this transfer's link time —
    // every retry of the same transfer sees the same degraded link.
    let stretch = rs.inj.link_stretch(index);
    if stretch > 1.0 {
        tl.count_link_degradation();
        if let Some(r) = rec {
            r.add("link.degradations", 1);
            r.flight("link_degraded", || {
                format!("transfer {index} stretched {stretch:.2}x")
            });
        }
    }
    let mut attempt: u32 = 0;
    loop {
        let span = copy_with_dma(
            tl,
            dma_engine,
            link_engine,
            kind,
            ready,
            bytes,
            link,
            copy_bw,
            stretch,
        );
        if !rs
            .inj
            .fires_attempt(FaultSite::TransferCorrupt, index, attempt)
        {
            return Ok(span);
        }
        if attempt >= rs.retry.max_retries {
            return Err(SimError::ChunkCorrupt {
                chunk: index as usize,
                attempts: attempt + 1,
            });
        }
        // Arrival CRC mismatched: back off (modeled), then retransmit.
        // Seeded jitter keyed by the transfer index decorrelates
        // simultaneous per-device retries (bare exponential backoff
        // resynchronizes them into retry storms) while keeping replay
        // under a fixed seed bit-exact.
        let b = tl.schedule(
            link_engine,
            span.end,
            rs.retry
                .jittered_backoff_s(rs.inj.config().seed ^ index, attempt),
            TaskKind::Backoff,
            0,
        );
        tl.count_chunk_retry();
        if let Some(r) = rec {
            r.add("chunk.retries", 1);
            r.flight("retry", || {
                format!("transfer {index} CRC mismatch, attempt {}", attempt + 1)
            });
        }
        ready = b.end;
        attempt += 1;
    }
}

/// Real compressed size of a chunk under the configured codec, capped at
/// raw size (the scheme falls back to the raw representation if
/// compression would expand the data). Records the per-chunk ratio
/// histogram; the wall-clock Compress span is opened by the caller at
/// per-gate granularity (a span per chunk would swamp the recorder on
/// million-chunk runs).
pub(crate) fn compressed_size(
    codec: &dyn Codec,
    amps: &[Complex64],
    raw_bytes: usize,
    rec: Option<&Recorder>,
) -> usize {
    let enc = codec.encode_amplitudes(amps);
    let out = enc.total_bytes().min(raw_bytes);
    if let Some(r) = rec {
        r.observe("compress.ratio.x100", (raw_bytes * 100 / out.max(1)) as u64);
        if codec.kind() == qgpu_compress::CodecKind::Cascade {
            // The sizing pass is where the cascade actually runs in the
            // engine: publish which inner codec won this chunk.
            qgpu_compress::record_cascade_pick(r, enc.codec());
        }
    }
    out
}
