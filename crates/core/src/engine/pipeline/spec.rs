//! The declarative pipeline specification: what a [`crate::Version`]
//! *means*, reduced to an execution mode plus optimization flags.
//!
//! The six named versions are six points in a larger configuration
//! space: the baseline's static allocation is an execution **mode**
//! (chunks pinned in place, reactive exchange), while the streaming
//! engine composes four independent optimization **flags**
//! ([`OptFlags`]). [`PipelineSpec::from_config`] is the single place
//! that mapping lives — the stages themselves never consult the
//! version again.

use crate::config::{OptFlags, SimConfig, Version};

/// How the state vector meets the device(s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExecMode {
    /// Qiskit-Aer-style static chunk allocation (paper §III-B): chunks
    /// `0..resident` pinned on the GPU(s), the rest on the host,
    /// reactive synchronous exchange for cross-boundary mixing.
    Static,
    /// Chunks stream through the GPU(s) per gate (paper §III-C …§IV),
    /// with the optimization flags layered on the shared stage graph.
    Streaming,
}

/// The assembled pipeline configuration for one run: mode, optimization
/// subset, and the gate-batching extension toggle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PipelineSpec {
    pub(crate) mode: ExecMode,
    pub(crate) flags: OptFlags,
    /// Merge runs of chunk-local gates into one chunk round trip
    /// (the [`SimConfig::batch_local_gates`] extension).
    pub(crate) batching: bool,
}

impl PipelineSpec {
    /// Derives the spec from a config: an explicit
    /// [`SimConfig::opts`] subset always streams with exactly those
    /// flags; otherwise the named version supplies its flag set, with
    /// [`Version::Baseline`] selecting the static mode.
    pub(crate) fn from_config(cfg: &SimConfig) -> Self {
        let (mode, flags) = match cfg.opts {
            Some(f) => (ExecMode::Streaming, f),
            None if cfg.version == Version::Baseline => (ExecMode::Static, OptFlags::default()),
            None => (ExecMode::Streaming, cfg.version.opt_flags()),
        };
        PipelineSpec {
            mode,
            flags,
            batching: cfg.batch_local_gates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_versions_map_to_their_flag_sets() {
        for v in Version::ALL {
            let spec = PipelineSpec::from_config(&SimConfig::scaled_paper(10).with_version(v));
            if v == Version::Baseline {
                assert_eq!(spec.mode, ExecMode::Static);
                assert_eq!(spec.flags, OptFlags::default());
            } else {
                assert_eq!(spec.mode, ExecMode::Streaming);
                assert_eq!(spec.flags, v.opt_flags(), "{v}");
            }
        }
    }

    #[test]
    fn explicit_opts_override_the_version_even_for_baseline() {
        let opts = OptFlags::parse("pruning+compression").unwrap();
        let cfg = SimConfig::scaled_paper(10)
            .with_version(Version::Baseline)
            .with_opts(opts);
        let spec = PipelineSpec::from_config(&cfg);
        assert_eq!(spec.mode, ExecMode::Streaming);
        assert_eq!(spec.flags, opts);
    }

    #[test]
    fn batching_rides_the_config_flag() {
        let cfg = SimConfig::scaled_paper(10).with_gate_batching();
        assert!(PipelineSpec::from_config(&cfg).batching);
        assert!(!PipelineSpec::from_config(&SimConfig::scaled_paper(10)).batching);
    }
}
