//! The ABFT integrity middleware: online invariant checks over kernel
//! output, seeded kernel-flip injection, and audited re-execution.
//!
//! CRC tags (the `Resilience` middleware) seal *transfers*: corruption
//! introduced on the wire is caught on arrival. A bit flip **inside a
//! kernel** is invisible to them — the corrupted amplitudes are what
//! gets checksummed. This middleware closes that hole with the
//! algebraic invariants of unitary evolution (see
//! `qgpu_faults::invariant`):
//!
//! * per-chunk 2-norm tables, updated after every checked kernel with
//!   the compensated deterministic reduction from `qgpu-math`;
//! * per-chunk peak-|a|² tables backing the magnitude-preservation
//!   check on diagonal kernels;
//! * zero-block checks for chunks the involvement tracker pruned;
//! * a whole-state norm gate before any Measure/Sample consumes the
//!   state.
//!
//! Detection wires into recovery: a violated task is restored from its
//! pre-gate snapshot and re-executed on the same (modeled) device; a
//! second violation escalates to re-execution attributed to a
//! *different* device (a dual-run vote — host state is authoritative,
//! so the vote is modeled by the attempt ladder), and every violation
//! feeds the per-device [`DeviceHealthBoard`]. A device the board
//! quarantines is drained through the orchestrator's existing
//! `lose_device` re-shard path by the streaming driver.
//!
//! Cost model: in fault-free `--verify-invariants` runs diagonal
//! kernels pass through without a norm recompute (a diagonal gate
//! provably preserves every per-chunk norm, so the tables stay valid;
//! the accumulated staleness widens later tolerances), and the
//! remaining non-diagonal kernels are checked at a fixed stride
//! ([`UNARMED_STRIDE`]): a skipped chunk-local unitary still preserves
//! its chunk norm, so those baselines stay live, while chunks a skipped
//! *mixing* gate touched are marked unknown and re-anchored at the next
//! check. Together these keep the overhead of e.g. QFT under the
//! `integrity_overhead` bench's 3% bound. When a kernel-flip fault is
//! armed, every gate is checked eagerly so repair windows stay one gate
//! wide.

use qgpu_circuit::fuse::FusedOp;
use qgpu_device::timeline::Timeline;
use qgpu_faults::invariant::{IntegritySummary, InvariantKind, Tolerance};
use qgpu_faults::{FaultInjector, SimError};
use qgpu_math::reduce::{norm_and_peak, norm_sqr_compensated, pairwise_sum};
use qgpu_math::rng::unit_draw;
use qgpu_math::Complex64;
use qgpu_obs::{span_opt, Recorder, Stage as ObsStage, Track};
use qgpu_sched::health::{DeviceHealthBoard, HealthTransition};
use qgpu_statevec::{ChunkExecutor, ChunkedState};

use crate::config::SimConfig;

use super::middleware;

/// Salt for the flip's amplitude-offset draw — its own stream, distinct
/// from the fire/no-fire decision ("target" in ASCII).
const SALT_FLIP_TARGET: u64 = 0x7461_7267_6574_0000;

/// In unarmed verify mode, one non-diagonal kernel in this many gets a
/// full norm sweep; the rest bump the staleness budget. Armed runs
/// check every gate (repair needs one-gate windows).
const UNARMED_STRIDE: u64 = 4;

/// One checked unit of kernel work: a chunk-local task or a mixing
/// group. Mirrors `qgpu_sched::plan::ChunkTask`, but borrows the
/// caller's slices.
#[derive(Clone, Copy)]
enum Task<'t> {
    Single(usize),
    Group(&'t [usize]),
}

impl<'t> Task<'t> {
    fn chunks(&self) -> &[usize] {
        match self {
            Task::Single(c) => std::slice::from_ref(c),
            Task::Group(g) => g,
        }
    }
}

/// The integrity middleware state, owned by the streaming `Env` (and by
/// the static runner) when [`SimConfig::integrity_active`] holds.
pub(crate) struct IntegrityMw {
    inj: FaultInjector,
    /// Kernel-flip injection configured: snapshot before every kernel so
    /// violations can be repaired by re-execution.
    armed: bool,
    retry_budget: u32,
    num_gpus: usize,
    /// Expected squared 2-norm per chunk (exactly preserved by every
    /// chunk-local unitary).
    norms: Vec<f64>,
    /// Expected peak per-amplitude |a|² per chunk (preserved by
    /// diagonal kernels).
    peaks: Vec<f64>,
    /// Pass-through (unchecked diagonal or stride-skipped) gates since
    /// the last full table rebuild — widens later tolerances so
    /// staleness never false-positives.
    stale_gates: u64,
    /// Non-diagonal kernels since the last strided check (unarmed mode).
    since_check: u64,
    /// Pruning gates since the last zero-block sweep (unarmed mode).
    zb_since: u64,
    gates_checked: u64,
    board: DeviceHealthBoard,
    /// A device the board just quarantined, awaiting the driver's drain
    /// through the orchestrator re-shard path.
    pending_quarantine: Option<usize>,
    pub(crate) summary: IntegritySummary,
}

impl IntegrityMw {
    /// Builds the middleware for a fresh `|0…0⟩` state.
    pub(crate) fn new(cfg: &SimConfig, num_qubits: usize, chunk_bits: u32) -> Self {
        let num_chunks = 1usize << (num_qubits as u32 - chunk_bits);
        let num_gpus = cfg.platform.num_gpus();
        let mut norms = vec![0.0; num_chunks];
        let mut peaks = vec![0.0; num_chunks];
        // |0…0⟩ lives entirely in chunk 0.
        norms[0] = 1.0;
        peaks[0] = 1.0;
        IntegrityMw {
            inj: FaultInjector::new(cfg.faults),
            armed: cfg.faults.kernel_faults_enabled(),
            retry_budget: cfg.retry.max_retries,
            num_gpus: num_gpus.max(1),
            norms,
            peaks,
            stale_gates: 0,
            since_check: 0,
            zb_since: 0,
            gates_checked: 0,
            board: DeviceHealthBoard::new(num_gpus.max(1)),
            pending_quarantine: None,
            summary: IntegritySummary::default(),
        }
    }

    /// Recomputes both tables from the actual state — after a resume,
    /// a collapse renormalization, or a chunk-size repartition.
    pub(crate) fn rebuild(&mut self, state: &ChunkedState) {
        let n = state.num_chunks();
        self.norms.resize(n, 0.0);
        self.peaks.resize(n, 0.0);
        for c in 0..n {
            let (norm, peak) = state.chunk(c).map_or((0.0, 0.0), norm_and_peak);
            self.norms[c] = norm;
            self.peaks[c] = peak;
        }
        self.stale_gates = 0;
        self.since_check = 0;
    }

    /// The modeled device a chunk's kernel is attributed to: the same
    /// striping the static allocator uses. (Streaming deals modeled
    /// *tasks* dynamically; for health attribution a stable
    /// chunk→device map is what makes repeated flips on one chunk
    /// indict one device.)
    fn device_of(&self, chunk: usize) -> usize {
        chunk % self.num_gpus
    }

    /// A device the board quarantined since the last call, if any.
    pub(crate) fn take_pending_quarantine(&mut self) -> Option<usize> {
        self.pending_quarantine.take()
    }

    /// Whether this pruning gate gets a zero-block sweep. Armed runs
    /// sweep every gate (repair windows must stay one gate wide);
    /// unarmed verify strides like the norm checks — a corrupt pruned
    /// chunk stays pruned (nothing writes it), so a later sweep still
    /// catches it, and the whole-state gate backstops the rest.
    pub(crate) fn zero_sweep_due(&mut self) -> bool {
        if self.armed {
            return true;
        }
        self.zb_since += 1;
        if self.zb_since < UNARMED_STRIDE {
            return false;
        }
        self.zb_since = 0;
        true
    }

    fn count(rec: Option<&Recorder>, name: &'static str, kind: InvariantKind) {
        if let Some(r) = rec {
            r.add(name, 1);
            r.registry().add(name, &[("kind", kind.label())], 1);
        }
    }

    fn note_violation(
        &mut self,
        kind: InvariantKind,
        op_idx: usize,
        chunk: usize,
        attempt: u32,
        rec: Option<&Recorder>,
    ) {
        self.summary.violations += 1;
        Self::count(rec, "integrity.violations", kind);
        if let Some(r) = rec {
            r.flight("integrity", || {
                format!(
                    "{} invariant violated at op {op_idx} chunk {chunk} (attempt {attempt})",
                    kind.label()
                )
            });
        }
        let dev = self.device_of(chunk);
        if self.board.record_violation(dev) == HealthTransition::Quarantined {
            self.summary.quarantines += 1;
            self.pending_quarantine = Some(dev);
            if let Some(r) = rec {
                r.add("integrity.quarantines", 1);
                r.registry()
                    .add("integrity.quarantines", &[("state", "quarantined")], 1);
                r.flight("quarantine", || {
                    format!("device {dev} quarantined by health board at op {op_idx}")
                });
            }
        }
    }

    /// Per-task invariant sweep. Returns the violated tasks (indices
    /// into `tasks`); table entries of *passing* tasks are committed,
    /// entries of violated tasks keep their pre-gate expectation (the
    /// baseline the repair recheck compares against).
    #[allow(clippy::too_many_arguments)]
    fn check_tasks(
        &mut self,
        state: &ChunkedState,
        tasks: &[Task<'_>],
        which: &[usize],
        diag: bool,
        member_gates: usize,
        op_idx: usize,
        attempt: u32,
        rec: Option<&Recorder>,
    ) -> Vec<usize> {
        let chunk_len = state.chunk_len();
        let budget = member_gates + self.stale_gates as usize;
        let mut violated = Vec::new();
        for &ti in which {
            let task = tasks[ti];
            let chunks = task.chunks();
            let tol = Tolerance::per_gate(chunk_len * chunks.len(), budget);
            let fresh: Vec<(f64, f64)> = chunks
                .iter()
                .map(|&c| state.chunk(c).map_or((0.0, 0.0), norm_and_peak))
                .collect();
            let before: f64 = chunks.iter().map(|&c| self.norms[c]).sum();
            let after: f64 = fresh.iter().map(|&(n, _)| n).sum();
            self.summary.checks += 1;
            let kind = match task {
                Task::Single(_) => InvariantKind::ChunkNorm,
                Task::Group(_) => InvariantKind::GroupNorm,
            };
            Self::count(rec, "integrity.checks", kind);
            // A NaN baseline means a stride-skipped mixing gate touched
            // one of these chunks: there is nothing to compare against,
            // so this sweep re-anchors the tables instead.
            let mut ok = !before.is_finite() || tol.within(before, after);
            if ok && diag {
                // Diagonal kernels additionally preserve per-amplitude
                // magnitudes, so the per-chunk peak must hold too.
                self.summary.checks += 1;
                Self::count(rec, "integrity.checks", InvariantKind::Magnitude);
                ok = chunks
                    .iter()
                    .zip(&fresh)
                    .all(|(&c, &(_, p))| tol.within(self.peaks[c], p));
                if !ok {
                    self.note_violation(InvariantKind::Magnitude, op_idx, chunks[0], attempt, rec);
                }
            } else if !ok {
                self.note_violation(kind, op_idx, chunks[0], attempt, rec);
            }
            if ok {
                for (&c, &(n, p)) in chunks.iter().zip(&fresh) {
                    self.norms[c] = n;
                    self.peaks[c] = p;
                }
            } else {
                violated.push(ti);
            }
        }
        violated
    }

    /// XORs one bit of one amplitude in `target` — corruption *inside*
    /// kernel output, after the functional update and before any CRC
    /// seal sees the data.
    fn inject_flip(
        &mut self,
        state: &mut ChunkedState,
        target: usize,
        op_idx: usize,
        attempt: u32,
        rec: Option<&Recorder>,
    ) {
        let len = state.chunk_len();
        let u = unit_draw(
            self.inj.config().seed,
            SALT_FLIP_TARGET,
            op_idx as u64,
            u64::from(attempt),
        );
        let i = ((u * len as f64) as usize).min(len - 1);
        let bit = self.inj.kernel_flip_bit();
        let amps = state.chunk_mut_or_alloc(target);
        amps[i].re = f64::from_bits(amps[i].re.to_bits() ^ (1u64 << bit));
        self.summary.flips_injected += 1;
        if let Some(r) = rec {
            r.add("integrity.flips_injected", 1);
        }
    }

    /// The checked functional update: apply, (optionally) inject, sweep
    /// the invariants, and repair violations by bounded re-execution.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn checked_apply(
        &mut self,
        executor: &mut ChunkExecutor,
        state: &mut ChunkedState,
        tl: &mut Timeline,
        rec: Option<&Recorder>,
        fop: &FusedOp,
        op_idx: usize,
        singles: &[usize],
        groups: &[&[usize]],
        high_mixing: &[usize],
    ) -> Result<(), SimError> {
        let diag = fop.actions().iter().all(|a| a.is_diagonal());
        if !self.armed && diag {
            // Fault-free verify mode: a diagonal kernel provably
            // preserves every per-chunk norm, so the tables stay valid
            // without a recompute. The whole-state gate still audits
            // the final answer; staleness widens later tolerances.
            self.stale_gates += 1;
            return middleware::apply_functional(
                executor,
                state,
                tl,
                rec,
                fop,
                singles,
                groups,
                high_mixing,
            );
        }

        if !self.armed {
            self.since_check += 1;
            if self.since_check < UNARMED_STRIDE {
                // Strided verify: skip the sweep, but a mixing task
                // redistributes norm across its group, so those chunks'
                // baselines are no longer live — mark them unknown for
                // re-anchoring at the next checked gate. A chunk-local
                // unitary preserves its chunk norm exactly, so single
                // baselines survive the skip.
                self.stale_gates += 1;
                for g in groups {
                    for &c in *g {
                        self.norms[c] = f64::NAN;
                        self.peaks[c] = f64::NAN;
                    }
                }
                return middleware::apply_functional(
                    executor,
                    state,
                    tl,
                    rec,
                    fop,
                    singles,
                    groups,
                    high_mixing,
                );
            }
            self.since_check = 0;
        }

        let tasks: Vec<Task<'_>> = singles
            .iter()
            .map(|&c| Task::Single(c))
            .chain(groups.iter().map(|g| Task::Group(g)))
            .collect();
        if tasks.is_empty() {
            return Ok(());
        }
        self.gates_checked += 1;

        // Pre-gate snapshots make violations repairable: restore the
        // violated task's chunks and re-run just that task. Only taken
        // when an injection campaign is armed — pure verify mode
        // detects and reports instead (nothing is injected, so a
        // violation there is a genuine engine/hardware fault).
        let snapshots: Vec<Vec<Option<Vec<Complex64>>>> = if self.armed {
            tasks
                .iter()
                .map(|t| {
                    t.chunks()
                        .iter()
                        .map(|&c| state.chunk(c).map(|s| s.to_vec()))
                        .collect()
                })
                .collect()
        } else {
            Vec::new()
        };

        middleware::apply_functional(executor, state, tl, rec, fop, singles, groups, high_mixing)?;
        if self.armed && self.inj.kernel_flip_fires(op_idx, 0) {
            // The flip lands in the first touched chunk (stable, so a
            // flip campaign indicts a stable device); the amplitude
            // offset within the chunk is seed-drawn.
            self.inject_flip(state, tasks[0].chunks()[0], op_idx, 0, rec);
        }

        let all: Vec<usize> = (0..tasks.len()).collect();
        let member_gates = fop.source_gates().max(1);
        let mut violated = {
            let _g = span_opt(rec, Track::Main, ObsStage::Update, "update.verify");
            self.check_tasks(state, &tasks, &all, diag, member_gates, op_idx, 0, rec)
        };
        let mut attempt: u32 = 0;
        while !violated.is_empty() {
            let first_chunk = tasks[violated[0]].chunks()[0];
            if !self.armed || attempt >= self.retry_budget {
                return Err(SimError::InvariantViolation {
                    gate: op_idx,
                    chunk: first_chunk,
                });
            }
            attempt += 1;
            let _g = span_opt(rec, Track::Main, ObsStage::Update, "update.repair");
            // Audit trail: attempt 1 re-executes on the violating
            // device; attempt ≥ 2 is the dual-run escalation attributed
            // to a different device (host re-execution stands in for
            // the vote — its result is the bit-exact reference).
            if attempt == 1 {
                self.summary.reexec_same_device += 1;
                if let Some(r) = rec {
                    r.add("integrity.reexec_same_device", 1);
                }
            } else {
                self.summary.reexec_cross_device += 1;
                if let Some(r) = rec {
                    r.add("integrity.reexec_cross_device", 1);
                }
            }
            // Restore every violated task to its pre-gate bytes, then
            // re-run exactly those tasks.
            let mut singles_v: Vec<usize> = Vec::new();
            let mut groups_v: Vec<&[usize]> = Vec::new();
            for &ti in &violated {
                for (&c, snap) in tasks[ti].chunks().iter().zip(&snapshots[ti]) {
                    match snap {
                        Some(bytes) => state.chunk_mut_or_alloc(c).copy_from_slice(bytes),
                        None => state.chunk_mut_or_alloc(c).fill(Complex64::ZERO),
                    }
                }
                match tasks[ti] {
                    Task::Single(c) => singles_v.push(c),
                    Task::Group(g) => groups_v.push(g),
                }
            }
            if !singles_v.is_empty() {
                let restarts = executor.try_apply_local_run(state, fop.actions(), &singles_v)?;
                middleware::note_restarts(tl, rec, restarts);
            }
            if !groups_v.is_empty() {
                let restarts =
                    executor.try_apply_group_runs(state, fop.actions(), &groups_v, high_mixing)?;
                middleware::note_restarts(tl, rec, restarts);
            }
            if self.inj.kernel_flip_fires(op_idx, attempt) {
                self.inject_flip(state, tasks[violated[0]].chunks()[0], op_idx, attempt, rec);
            }
            let before = violated.len();
            violated = self.check_tasks(
                state,
                &tasks,
                &violated,
                diag,
                member_gates,
                op_idx,
                attempt,
                rec,
            );
            let repaired = (before - violated.len()) as u64;
            if repaired > 0 {
                self.summary.repairs += repaired;
                if let Some(r) = rec {
                    r.add("integrity.repairs", repaired);
                }
            }
        }
        Ok(())
    }

    /// Zero-block invariant: every chunk the prune stage skipped this
    /// gate must hold no amplitude. The involvement tracker's claim is a
    /// proof, so any amplitude here is corruption (or a pruning bug) —
    /// unrepairable by re-execution, reported upward.
    pub(crate) fn check_zero_blocks<I: IntoIterator<Item = usize>>(
        &mut self,
        state: &ChunkedState,
        pruned: I,
        op_idx: usize,
        rec: Option<&Recorder>,
    ) -> Result<(), SimError> {
        // Counters are batched per sweep: a qft_20 run prunes tens of
        // millions of (chunk, gate) pairs, and a per-chunk labeled
        // registry update would dwarf the checks themselves.
        let floor = f64::EPSILON * f64::EPSILON;
        let mut swept = 0u64;
        let mut bad = None;
        for c in pruned {
            swept += 1;
            let table = self.norms[c];
            let live = !state.is_zero_chunk(c)
                && if table.is_finite() {
                    table > floor
                } else {
                    // Baseline lost to a stride skip: ask the data.
                    state.chunk(c).map_or(0.0, norm_sqr_compensated) > floor
                };
            if live {
                bad = Some(c);
                break;
            }
        }
        self.summary.checks += swept;
        if let Some(r) = rec {
            if swept > 0 {
                r.add("integrity.checks", swept);
                r.registry().add(
                    "integrity.checks",
                    &[("kind", InvariantKind::ZeroBlock.label())],
                    swept,
                );
            }
        }
        if let Some(c) = bad {
            self.note_violation(InvariantKind::ZeroBlock, op_idx, c, 0, rec);
            return Err(SimError::InvariantViolation {
                gate: op_idx,
                chunk: c,
            });
        }
        Ok(())
    }

    /// The whole-state norm gate, run before any Measure/Sample
    /// consumes the state: recomputes the total norm from the actual
    /// amplitudes (not the tables), so corruption in chunks untouched
    /// since their last per-gate check — including diagonal
    /// pass-through gates — is caught before it reaches an answer.
    pub(crate) fn check_whole_state(
        &mut self,
        state: &ChunkedState,
        op_idx: usize,
        rec: Option<&Recorder>,
    ) -> Result<(), SimError> {
        let per_chunk: Vec<f64> = (0..state.num_chunks())
            .map(|c| state.chunk(c).map_or(0.0, norm_sqr_compensated))
            .collect();
        let total = pairwise_sum(&per_chunk);
        let amps = 1usize << state.num_qubits();
        let tol = Tolerance::whole_state(amps, self.gates_checked + self.stale_gates);
        self.summary.checks += 1;
        Self::count(rec, "integrity.checks", InvariantKind::WholeState);
        if !tol.within(1.0, total) {
            self.note_violation(InvariantKind::WholeState, op_idx, usize::MAX, 0, rec);
            return Err(SimError::InvariantViolation {
                gate: op_idx,
                chunk: usize::MAX,
            });
        }
        Ok(())
    }
}

/// The functional update with integrity checking when armed: the single
/// entry point every execution mode (streaming stages, batch, static)
/// routes its kernel application through.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_gate(
    integ: &mut Option<IntegrityMw>,
    executor: &mut ChunkExecutor,
    state: &mut ChunkedState,
    tl: &mut Timeline,
    rec: Option<&Recorder>,
    fop: &FusedOp,
    op_idx: usize,
    singles: &[usize],
    groups: &[&[usize]],
    high_mixing: &[usize],
) -> Result<(), SimError> {
    match integ.as_mut() {
        Some(mw) => mw.checked_apply(
            executor,
            state,
            tl,
            rec,
            fop,
            op_idx,
            singles,
            groups,
            high_mixing,
        ),
        None => middleware::apply_functional(
            executor,
            state,
            tl,
            rec,
            fop,
            singles,
            groups,
            high_mixing,
        ),
    }
}
