//! Transfer-side pipeline stages: Fetch (modeled H2D with admission
//! control), Decompress, Compress (real-codec sizing + the modeled
//! compress kernel), and Writeback (modeled D2H + window accounting).
//!
//! Like the compute-side stages these consult only the spec's flags;
//! integrity checking and fault injection arrive through the
//! [`super::middleware::Resilience`] middleware in [`super::Env`].

use qgpu_device::timeline::{Engine, TaskKind};
use qgpu_faults::SimError;
use qgpu_obs::{span_opt, Stage as ObsStage, Track};

use super::middleware::Resilience;
use super::stages::Stage;
use super::{Env, GateCtx, TaskCtx, RAW_FALLBACK};

/// Fetch: compute the task's upload bytes (pruned members don't move;
/// cached compressed representations move small), drain the
/// double-buffer window until the task fits, seal departing integrity
/// tags, and schedule the H2D copy.
pub(crate) struct FetchStage;

impl Stage for FetchStage {
    fn name(&self) -> &'static str {
        "fetch"
    }

    fn on_task(&self, t: &mut TaskCtx, g: &mut GateCtx, env: &mut Env) -> Result<(), SimError> {
        let cfg = env.cfg;
        let members = g.plan.as_ref().expect("Plan stage ran").tasks()[t.task_ix].chunks();
        // Pruning skips provably-zero members; otherwise all move.
        for &m in members {
            if g.pruning && env.tracker.chunk_is_zero(m, env.chunk_bits) {
                continue;
            }
            match (g.compressing, env.compressed.get(&m)) {
                (true, Some(&sz)) => {
                    t.h2d_bytes += sz as u64;
                    t.raw_up_compressed += g.chunk_bytes;
                }
                _ => t.h2d_bytes += g.chunk_bytes,
            }
        }
        let mut ready = env.epoch_floor;
        for &m in members {
            if let Some(&x) = env.last_d2h.get(&m) {
                ready = ready.max(x);
            }
        }
        super::admit_window(
            env,
            t.gpu,
            members.len(),
            g.compressing,
            g.chunk_bytes,
            &mut ready,
        );
        let cb = env.chunk_bits;
        let pruning = g.pruning;
        if let Some(rs) = env.resil.as_mut() {
            rs.seal_for_upload(&env.state, members, cb, |m| {
                pruning && env.tracker.chunk_is_zero(m, cb)
            });
        }
        let h2d = super::transfer::transfer_with_integrity(
            &mut env.tl,
            Engine::HostDmaOut,
            Engine::H2d(t.gpu),
            TaskKind::H2dCopy,
            ready,
            t.h2d_bytes,
            cfg.platform.link(t.gpu),
            cfg.platform.host.copy_bw,
            env.resil.as_mut(),
            env.rec,
        )?;
        t.compute_ready = h2d.end;
        Ok(())
    }
}

/// Decompress: bytes that arrived compressed pay the decompress kernel
/// before the update can run.
pub(crate) struct DecompressStage;

impl Stage for DecompressStage {
    fn name(&self) -> &'static str {
        "decompress"
    }

    fn on_task(&self, t: &mut TaskCtx, _g: &mut GateCtx, env: &mut Env) -> Result<(), SimError> {
        if t.raw_up_compressed > 0 {
            let gspec = env.cfg.platform.gpu(t.gpu);
            let d = env.tl.schedule(
                Engine::GpuCompute(t.gpu),
                t.compute_ready,
                t.raw_up_compressed as f64 / gspec.codec_bw(env.codec_class),
                TaskKind::Decompress,
                t.raw_up_compressed,
            );
            t.compute_ready = d.end;
        }
        Ok(())
    }
}

/// Compress: at gate level, the real-codec sizing pass for every member
/// moving back (one pass, so the measured Compress span has per-gate —
/// not per-chunk — granularity; tasks touch disjoint chunks, so the
/// sizes are identical to compressing inside the task loop). Per task,
/// the download byte count and the modeled compress kernel.
pub(crate) struct CompressStage;

impl Stage for CompressStage {
    fn name(&self) -> &'static str {
        "compress"
    }

    fn begin_gate(&self, g: &mut GateCtx, env: &mut Env) -> Result<(), SimError> {
        if !g.compressing {
            return Ok(());
        }
        let _sp = span_opt(
            env.rec,
            Track::Main,
            ObsStage::for_pipeline(self.name()),
            env.codec.kind().compress_span(),
        );
        let members: Vec<usize> = {
            let plan = g.plan.as_ref().expect("Plan stage ran");
            g.task_ixs
                .iter()
                .flat_map(|&i| plan.tasks()[i].chunks().iter().copied())
                .collect()
        };
        for m in members {
            if g.pruning && g.tracker_after.chunk_is_zero(m, env.chunk_bits) {
                continue;
            }
            // Injected encode failure: mark the member for a raw
            // (uncompressed) download fallback.
            if env.resil.as_mut().is_some_and(Resilience::codec_fails) {
                env.tl.count_codec_fallback();
                if let Some(r) = env.rec {
                    let cname = env.codec.kind().name();
                    r.add("codec.fallbacks", 1);
                    r.flight("codec_fallback", || {
                        format!("chunk {m}: {cname} encode failed, moving raw")
                    });
                }
                g.new_sizes.insert(m, RAW_FALLBACK);
                g.raw_members += 1;
                continue;
            }
            let sz = super::encode_member(env, m);
            g.new_sizes.insert(m, sz);
        }
        Ok(())
    }

    fn on_task(&self, t: &mut TaskCtx, g: &mut GateCtx, env: &mut Env) -> Result<(), SimError> {
        let members = g.plan.as_ref().expect("Plan stage ran").tasks()[t.task_ix].chunks();
        for &m in members {
            if g.pruning && g.tracker_after.chunk_is_zero(m, env.chunk_bits) {
                env.compressed.remove(&m);
                continue;
            }
            if g.compressing {
                let sz = g.new_sizes[&m];
                if sz == RAW_FALLBACK {
                    // Encode failed for this member: raw download, no
                    // compress kernel time, nothing cached as compressed.
                    env.compressed.remove(&m);
                    t.d2h_bytes += g.chunk_bytes;
                } else {
                    env.tl.record_compression(g.chunk_bytes, sz as u64);
                    env.compressed.insert(m, sz);
                    t.d2h_bytes += sz as u64;
                    t.raw_down_compressed += g.chunk_bytes;
                }
            } else {
                t.d2h_bytes += g.chunk_bytes;
            }
        }
        if t.raw_down_compressed > 0 {
            let gspec = env.cfg.platform.gpu(t.gpu);
            let cspan = env.tl.schedule(
                Engine::GpuCompute(t.gpu),
                t.d2h_ready,
                t.raw_down_compressed as f64 / gspec.codec_bw(env.codec_class),
                TaskKind::Compress,
                t.raw_down_compressed,
            );
            t.d2h_ready = cspan.end;
        }
        Ok(())
    }
}

/// Writeback: arrival integrity re-tags for members that moved raw, the
/// modeled D2H copy, and the window/chain accounting that feeds the next
/// task's admission.
pub(crate) struct WritebackStage;

impl Stage for WritebackStage {
    fn name(&self) -> &'static str {
        "writeback"
    }

    fn on_task(&self, t: &mut TaskCtx, g: &mut GateCtx, env: &mut Env) -> Result<(), SimError> {
        let cfg = env.cfg;
        let members = g.plan.as_ref().expect("Plan stage ran").tasks()[t.task_ix].chunks();
        let cb = env.chunk_bits;
        let pruning = g.pruning;
        // Arrival re-tags are paid only for members that moved raw:
        // a fully-pruned task (`d2h_bytes == 0`) and a fully-sealed
        // compressed task skip the pass entirely.
        if t.d2h_bytes > 0 {
            if !g.compressing {
                let ta = &g.tracker_after;
                if let Some(rs) = env.resil.as_mut() {
                    rs.verify_on_arrival(&env.state, members, cb, |m| {
                        pruning && ta.chunk_is_zero(m, cb)
                    });
                }
            } else if g.raw_members > 0 {
                // Compressed members were sealed at encode time; only
                // raw codec-failure fallbacks need an arrival pass.
                let ns = &g.new_sizes;
                if let Some(rs) = env.resil.as_mut() {
                    rs.verify_on_arrival(&env.state, members, cb, |m| {
                        ns.get(&m) != Some(&RAW_FALLBACK)
                    });
                }
            }
        }
        let d2h = super::transfer::transfer_with_integrity(
            &mut env.tl,
            Engine::HostDmaIn,
            Engine::D2h(t.gpu),
            TaskKind::D2hCopy,
            t.d2h_ready,
            t.d2h_bytes,
            cfg.platform.link(t.gpu),
            cfg.platform.host.copy_bw,
            env.resil.as_mut(),
            env.rec,
        )?;
        for &m in members {
            env.last_d2h.insert(m, d2h.end);
        }
        if env.spec.flags.overlap {
            env.windows[t.gpu].slots.push_back((d2h.end, members.len()));
            env.windows[t.gpu].inflight += members.len();
        } else {
            env.chain = d2h.end;
        }
        Ok(())
    }

    fn end_gate(&self, _g: &mut GateCtx, env: &mut Env) -> Result<(), SimError> {
        // Window occupancy, sampled once per gate per device.
        if env.spec.flags.overlap {
            if let Some(r) = env.rec {
                for w in &env.windows {
                    r.observe("window.inflight", w.inflight as u64);
                }
            }
        }
        Ok(())
    }
}
