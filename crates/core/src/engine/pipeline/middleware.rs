//! Cross-cutting pipeline middleware: concerns that wrap the stage
//! graph rather than living inside any one stage.
//!
//! * [`Resilience`] — seeded fault injection, CRC integrity tags, and
//!   deterministic occurrence counters;
//! * [`Orchestration`] — the device group that deals tasks and the
//!   memory-pressure governor's degradation ladder;
//! * [`BarrierClock`] — checkpoint barriers and device-loss draws;
//! * [`CheckpointLayer`] — periodic state checkpoints and the injected
//!   fatal fault, in resume-safe order;
//! * [`handle_device_loss`] — re-shard + replay recovery;
//! * [`apply_functional`] — the bit-exact functional update shared by
//!   every execution mode.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use qgpu_circuit::fuse::FusedOp;
use qgpu_device::timeline::{Engine, TaskKind, Timeline};
use qgpu_faults::{FaultInjector, FaultSite, RetryPolicy, SimError};
use qgpu_math::Complex64;
use qgpu_obs::{span_opt, Recorder, Stage as ObsStage, Track};
use qgpu_sched::devicegroup::OrchestratorConfig;
use qgpu_sched::devicegroup::{DeviceGroup, PressureAction, PressureGovernor};
use qgpu_statevec::{ChunkExecutor, ChunkedState};

use crate::checkpoint::Checkpoint;
use crate::config::SimConfig;

use super::transfer::copy_with_dma;
use super::Window;

/// Upper bound on `chunk_bits`, sizing the flat all-zero-tag cache.
pub(crate) const MAX_CHUNK_BITS: usize = 64;

/// A chunk's amplitudes as raw bytes, for checksumming.
fn amp_bytes(amps: &[Complex64]) -> &[u8] {
    // SAFETY: `Complex64` is two `f64`s with no padding; an initialized
    // amplitude slice is readable as plain bytes.
    unsafe { std::slice::from_raw_parts(amps.as_ptr().cast::<u8>(), std::mem::size_of_val(amps)) }
}

/// The resilient pipeline's working state: the seeded injector, the retry
/// policy, deterministic occurrence counters for each fault site (the
/// engine loop issues them serially, so a given seed replays identically),
/// and the per-chunk integrity tags.
///
/// Tag storage is flat-indexed, not hashed: a qft_20 run visits tens of
/// millions of (chunk, transfer) pairs, and at that volume per-visit
/// `HashMap` traffic alone blows the `fault_overhead` budget.
pub(crate) struct Resilience {
    pub(crate) inj: FaultInjector,
    pub(crate) retry: RetryPolicy,
    pub(crate) transfers: u64,
    codec_ops: u64,
    kernels: u64,
    /// Arrival-side CRC passes actually paid (each one is a real
    /// checksum over a chunk that moved raw). Compressed chunks are
    /// sealed at encode time and must never show up here — the
    /// `integrity.retags` counter makes that invariant observable.
    pub(crate) retags: u64,
    /// Last tag computed for each chunk (indexed by chunk number),
    /// refreshed on every arrival.
    tags: Vec<Option<u32>>,
    /// Tag of an all-zero chunk, indexed by chunk size — it never changes.
    zero_tag: [Option<u32>; MAX_CHUNK_BITS],
}

impl Resilience {
    pub(crate) fn new(cfg: &SimConfig) -> Self {
        Resilience {
            inj: FaultInjector::new(cfg.faults),
            retry: cfg.retry,
            transfers: 0,
            codec_ops: 0,
            kernels: 0,
            retags: 0,
            tags: Vec::new(),
            zero_tag: [None; MAX_CHUNK_BITS],
        }
    }

    /// Tag of an all-zero chunk of `chunk_bits` — computed once per size,
    /// then a flat array read.
    fn zero_tag(&mut self, chunk_bits: u32) -> u32 {
        *self.zero_tag[chunk_bits as usize].get_or_insert_with(|| {
            let zeros = vec![0u8; 16usize << chunk_bits];
            qgpu_faults::fast_checksum(&zeros)
        })
    }

    /// Grows the tag table to cover chunk indices in `members`.
    fn reserve_tags(&mut self, members: &[usize]) {
        let max = members.iter().copied().max().map_or(0, |m| m + 1);
        if max > self.tags.len() {
            self.tags.resize(max, None);
        }
    }

    /// Encode-time sealing: the GFC encoder computes the chunk's tag in
    /// the same pass that sizes the compressed stream — the amplitudes
    /// are cache-hot from the codec walk, so the checksum is nearly free
    /// (the same fusion zstd uses for its content checksum). The tag
    /// then travels with the compressed chunk; no separate arrival pass
    /// is needed.
    pub(crate) fn seal_at_encode(&mut self, m: usize, amps: &[Complex64]) {
        if m >= self.tags.len() {
            self.tags.resize(m + 1, None);
        }
        self.tags[m] = Some(qgpu_faults::fast_checksum(amp_bytes(amps)));
    }

    /// Encode-time sealing of an all-zero chunk (cached per chunk size).
    pub(crate) fn seal_zero_at_encode(&mut self, m: usize, chunk_bits: u32) {
        if m >= self.tags.len() {
            self.tags.resize(m + 1, None);
        }
        let zero = self.zero_tag(chunk_bits);
        self.tags[m] = Some(zero);
    }

    /// Upload-side integrity: a departing chunk carries the tag computed
    /// when it last arrived at the host — checksums travel with the data,
    /// and in the machine being modeled host chunk buffers are written
    /// only by D2H arrivals, so the arrival tag is still valid at the next
    /// upload. Chunks never tagged before are sealed now (one real CRC
    /// pass, mostly the cached all-zero tag early in a run). Members for
    /// which `skip` returns true are pruned from the transfer and don't
    /// move.
    pub(crate) fn seal_for_upload(
        &mut self,
        state: &ChunkedState,
        members: &[usize],
        chunk_bits: u32,
        skip: impl Fn(usize) -> bool,
    ) {
        self.reserve_tags(members);
        let zero = self.zero_tag(chunk_bits);
        for &m in members {
            if skip(m) || self.tags[m].is_some() {
                continue;
            }
            self.tags[m] = Some(match state.chunk(m) {
                Some(amps) => qgpu_faults::fast_checksum(amp_bytes(amps)),
                None => zero,
            });
        }
    }

    /// Arrival-side integrity for chunks that move *without* an encode
    /// pass (uncompressed subsets, and raw codec-failure fallbacks):
    /// re-tag each chunk that just crossed the link — one real CRC pass
    /// per round trip, the honest cost the `fault_overhead` bench
    /// bounds. Compressed chunks skip this: their tag was sealed at
    /// encode time and travels with the data. Either way the functional
    /// bytes cannot actually rot in memory, so a *mismatch* is the
    /// injector's decision, made inside
    /// [`super::transfer::transfer_with_integrity`]'s retry loop.
    /// Members for which `skip` returns true didn't move.
    pub(crate) fn verify_on_arrival(
        &mut self,
        state: &ChunkedState,
        members: &[usize],
        chunk_bits: u32,
        skip: impl Fn(usize) -> bool,
    ) {
        self.reserve_tags(members);
        let zero = self.zero_tag(chunk_bits);
        for &m in members {
            if skip(m) {
                continue;
            }
            self.retags += 1;
            self.tags[m] = Some(match state.chunk(m) {
                Some(amps) => qgpu_faults::fast_checksum(amp_bytes(amps)),
                None => zero,
            });
        }
    }

    /// Chunk-size re-partitioning renumbers chunks: every cached tag is
    /// stale and must be dropped.
    pub(crate) fn on_repartition(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = None);
    }

    /// Whether this op's involvement mask reads back corrupted — the
    /// pruning decision is then untrustworthy and the gate falls back to
    /// full-chunk execution.
    pub(crate) fn mask_corrupt(&self, op: usize) -> bool {
        self.inj.fires(FaultSite::MaskCorrupt, op as u64)
    }

    /// Whether the GFC encoder fails on this chunk occurrence (the
    /// pipeline then moves the chunk raw).
    pub(crate) fn codec_fails(&mut self) -> bool {
        let i = self.codec_ops;
        self.codec_ops += 1;
        self.inj.fires(FaultSite::CodecFail, i)
    }

    /// Modeled-time multiplier for the next kernel (1.0 unless a stage
    /// slowdown fires).
    pub(crate) fn kernel_stretch(&mut self) -> f64 {
        let i = self.kernels;
        self.kernels += 1;
        self.inj.slowdown(i)
    }
}

/// Engine-side orchestration state: the device group that deals tasks,
/// the optional memory-pressure governor, and the degradation latches the
/// governor has pulled so far. (Barrier and loss bookkeeping lives in
/// [`BarrierClock`].)
pub(crate) struct Orchestration {
    pub(crate) group: DeviceGroup,
    pub(crate) governor: Option<PressureGovernor>,
    /// ForceCompress rung pulled: chunks move compressed even on
    /// flag subsets without compression (modeled cost only; functional
    /// state is untouched, so results stay bit-identical).
    pub(crate) force_compress: bool,
    /// ShrinkChunks rung pulled: a ceiling on `chunk_bits`.
    pub(crate) bits_cap: Option<u32>,
}

impl Orchestration {
    pub(crate) fn new(num_gpus: usize, ocfg: OrchestratorConfig, cfg: &SimConfig) -> Self {
        let mut group = DeviceGroup::new(num_gpus, ocfg);
        // Replay logs only serve device loss; without device faults
        // their per-task pushes are the orchestrator's single biggest
        // fault-free cost.
        group.set_replay_tracking(cfg.faults.device_faults_enabled());
        Orchestration {
            group,
            governor: ocfg.mem_budget_bytes.map(PressureGovernor::new),
            force_compress: false,
            bits_cap: None,
        }
    }

    /// The window cap under the per-device residency budget. The cap
    /// clamps immediately — admission never exceeds the budget — while
    /// the governor's ladder escalates only after sustained pressure
    /// ([`PressureGovernor::on_pressure`]'s strike counter), pulling
    /// ShrinkChunks → ForceCompress → SpillOldest in order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn governed_cap(
        &mut self,
        base_cap: usize,
        inflight: usize,
        incoming: usize,
        chunk_bits: u32,
        chunk_bytes: u64,
        compressing: bool,
        tl: &mut Timeline,
        rec: Option<&Recorder>,
    ) -> usize {
        let Some(gov) = self.governor.as_mut() else {
            return base_cap;
        };
        let fit = gov.cap_chunks(chunk_bytes, 0);
        if fit < inflight + incoming {
            let can_shrink = chunk_bits > 1 && self.bits_cap.is_none();
            let can_compress = !compressing;
            if let Some(action) = gov.on_pressure(can_shrink, can_compress) {
                match action {
                    PressureAction::ShrinkChunks => {
                        self.bits_cap = Some(chunk_bits.saturating_sub(1).max(1));
                    }
                    PressureAction::ForceCompress => self.force_compress = true,
                    // The clamped cap already forces the admission loop
                    // to retire (spill) the oldest in-flight slots; the
                    // terminal rung just keeps doing that.
                    PressureAction::SpillOldest => {}
                }
                tl.count_pressure_downshift();
                if let Some(r) = rec {
                    r.add("orch.pressure_downshifts", 1);
                    r.flight("downshift", || format!("pressure governor: {action:?}"));
                }
            }
        } else {
            gov.on_relief();
        }
        gov.cap_chunks(chunk_bytes, incoming.max(1)).min(base_cap)
    }
}

/// Periodic checkpoints and the injected fatal fault, applied *in that
/// order* before each program op — so a run killed at op `k` resumes
/// from the newest checkpoint at or before `k`.
pub(crate) struct CheckpointLayer {
    last_ckpt: u64,
}

impl CheckpointLayer {
    pub(crate) fn new(start: usize) -> Self {
        CheckpointLayer {
            last_ckpt: start as u64,
        }
    }

    pub(crate) fn before_op(
        &mut self,
        idx: usize,
        state: &ChunkedState,
        cfg: &SimConfig,
        rec: Option<&Recorder>,
    ) -> Result<(), SimError> {
        if cfg.checkpoint_every > 0 && idx as u64 >= self.last_ckpt + cfg.checkpoint_every {
            if let Some(path) = cfg.checkpoint_path.as_deref() {
                crate::checkpoint::save_with_codec(&state.to_flat(), idx as u64, cfg.codec(), path)
                    .map_err(|e| SimError::Checkpoint(e.to_string()))?;
                self.last_ckpt = idx as u64;
                if let Some(r) = rec {
                    r.add("checkpoints.written", 1);
                }
            }
        }
        if idx >= cfg.faults.fail_at_gate {
            return Err(SimError::Fatal {
                gate: idx,
                reason: "injected fatal fault".to_string(),
            });
        }
        Ok(())
    }
}

/// Checkpoint barriers and device-loss draws: the deterministic one-shot
/// `device_lost_at` injection (latched, `>=` so the exact index survives
/// being consumed mid-batch) and the probabilistic once-per-(device,
/// barrier) draw. The injector exists only when a device-level fault is
/// configured; [`FaultInjector`] is pure, so this duplicate instance
/// replays the same draws as any other with the same seed.
pub(crate) struct BarrierClock {
    next_barrier: u64,
    barriers: u64,
    loss_fired: bool,
    inj: Option<FaultInjector>,
}

impl BarrierClock {
    pub(crate) fn new(cfg: &SimConfig, start: usize) -> Self {
        BarrierClock {
            next_barrier: cfg
                .effective_orchestration()
                .map_or(u64::MAX, |o| start as u64 + o.barrier_interval),
            barriers: 0,
            loss_fired: false,
            inj: cfg
                .faults
                .device_faults_enabled()
                .then(|| FaultInjector::new(cfg.faults)),
        }
    }

    /// Advances barrier state at op `idx` and returns a device to lose,
    /// if one fires.
    pub(crate) fn poll(
        &mut self,
        idx: usize,
        cfg: &SimConfig,
        group: &mut DeviceGroup,
        num_gpus: usize,
    ) -> Option<usize> {
        let mut lost: Option<usize> = None;
        if !self.loss_fired && idx >= cfg.faults.device_lost_at {
            self.loss_fired = true;
            if cfg.faults.device_lost_id < num_gpus {
                lost = Some(cfg.faults.device_lost_id);
            }
        }
        // Checkpoint barrier: replay logs truncate here, and the
        // probabilistic loss draws once per (device, barrier).
        if idx as u64 >= self.next_barrier {
            group.barrier();
            self.barriers += 1;
            self.next_barrier = idx as u64 + group.config().barrier_interval;
            if let (None, Some(inj)) = (lost, self.inj.as_ref()) {
                let b = self.barriers;
                lost = (0..num_gpus).find(|&d| group.is_alive(d) && inj.device_lost_fires(d, b));
            }
        }
        lost
    }
}

/// A device dropped out: re-shard onto the survivors and replay its
/// since-barrier log. Host state is authoritative (the functional update
/// already ran there), so recovery is purely modeled time — each migrated
/// task re-uploads its bytes and re-runs its kernel on the survivor the
/// post-loss epoch rotation deals it to — and the recovered result is
/// bit-identical to an undisturbed run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn handle_device_loss(
    device: usize,
    o: &mut Orchestration,
    tl: &mut Timeline,
    windows: &mut [Window],
    epoch_floor: &mut f64,
    chain: &mut f64,
    cfg: &SimConfig,
    rec: Option<&Recorder>,
) -> Result<(), SimError> {
    if !o.group.is_alive(device) {
        return Ok(());
    }
    let Some(replay) = o.group.lose_device(device) else {
        return Err(SimError::AllDevicesLost { device });
    };
    let _g = span_opt(rec, Track::Main, ObsStage::Other, "orch.reshard");
    tl.count_device_lost();
    tl.count_chunks_migrated(replay.len() as u64);
    if let Some(r) = rec {
        r.add("orch.devices_lost", 1);
        r.add("orch.chunks_migrated", replay.len() as u64);
        r.flight("device_loss", || {
            format!("device {device} lost; replaying {} task(s)", replay.len())
        });
    }
    // The dead device's double-buffer window died with it.
    windows[device].slots.clear();
    windows[device].inflight = 0;
    let floor = tl.makespan();
    let mut done = floor;
    for (i, t) in replay.iter().enumerate() {
        let g = o.group.owner_of(i);
        let h2d = copy_with_dma(
            tl,
            Engine::HostDmaOut,
            Engine::H2d(g),
            TaskKind::H2dCopy,
            floor,
            t.bytes,
            cfg.platform.link(g),
            cfg.platform.host.copy_bw,
            1.0,
        );
        let k = tl.schedule(
            Engine::GpuCompute(g),
            h2d.end,
            t.duration,
            TaskKind::Kernel,
            t.bytes,
        );
        done = done.max(k.end);
    }
    // Recovery is a synchronization point: the pipeline restarts from the
    // re-shard horizon.
    *epoch_floor = done.max(*epoch_floor);
    *chain = chain.max(*epoch_floor);
    Ok(())
}

/// Validates a resume checkpoint against this run's circuit and program,
/// returning the op index to resume at. The checkpoint must come from a
/// run with the same circuit and config — `gates_done` counts *program*
/// ops, which depend on fusion and reorder settings.
pub(crate) fn validate_resume(
    resume: Option<&Checkpoint>,
    num_qubits: usize,
    program_len: usize,
) -> Result<usize, SimError> {
    match resume {
        Some(ck) => {
            if ck.state.num_qubits() != num_qubits {
                return Err(SimError::Checkpoint(format!(
                    "checkpoint has {} qubits, circuit has {num_qubits}",
                    ck.state.num_qubits()
                )));
            }
            if ck.gates_done as usize > program_len {
                return Err(SimError::Checkpoint(format!(
                    "checkpoint is {} ops in, program has only {program_len}",
                    ck.gates_done
                )));
            }
            Ok(ck.gates_done as usize)
        }
        None => Ok(0),
    }
}

/// A checkpoint resume restarts at the last op *boundary*: whatever gate
/// was in progress when the original run stopped is discarded and
/// replayed from the checkpointed state. The replay is bit-identical, so
/// nothing in the output betrays it — make it visible instead of silent:
/// a flight-recorder event plus a one-time stderr warning (the same
/// convention as qgpu-obs's `spans_dropped` warning).
pub(crate) fn note_resume_discard(start: usize, rec: Option<&Recorder>) {
    static WARNED: AtomicBool = AtomicBool::new(false);
    if let Some(r) = rec {
        r.add("resume.discarded_ops", 1);
        r.flight("resume", || {
            format!("resume discards the in-progress op at index {start}; replaying it")
        });
    }
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "[qgpu] checkpoint resume discards the in-progress op at index {start}; replaying it"
        );
    }
}

/// Charges recovered worker deaths to the timeline and recorder.
pub(crate) fn note_restarts(tl: &mut Timeline, rec: Option<&Recorder>, restarts: u64) {
    if restarts > 0 {
        tl.count_worker_restarts(restarts);
        if let Some(r) = rec {
            r.add("worker.restarts", restarts);
            r.flight("worker_restart", || {
                format!("{restarts} worker thread(s) died and were restarted")
            });
        }
    }
}

/// The functional update (identical across every mode and flag subset):
/// the executor replays the op's member gates chunk by chunk, bitwise
/// identical to per-gate application at every thread count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_functional(
    executor: &mut ChunkExecutor,
    state: &mut ChunkedState,
    tl: &mut Timeline,
    rec: Option<&Recorder>,
    fop: &FusedOp,
    singles: &[usize],
    groups: &[&[usize]],
    high_mixing: &[usize],
) -> Result<(), SimError> {
    if !singles.is_empty() {
        let _g = span_opt(rec, Track::Main, ObsStage::Update, "update.local");
        let restarts = executor.try_apply_local_run(state, fop.actions(), singles)?;
        note_restarts(tl, rec, restarts);
    }
    if !groups.is_empty() {
        let _g = span_opt(rec, Track::Main, ObsStage::Update, "update.group");
        let restarts = executor.try_apply_group_runs(state, fop.actions(), groups, high_mixing)?;
        note_restarts(tl, rec, restarts);
    }
    Ok(())
}

/// Builds the configured functional executor: exact thread counts under a
/// worker-death campaign (no clamping to the host's cores — the
/// multi-worker partitioning paths under test must run even on small
/// machines, and the recovered result is bitwise identical at every
/// thread count).
pub(crate) fn build_executor(cfg: &SimConfig, recorder: Option<&Arc<Recorder>>) -> ChunkExecutor {
    let mut executor = if cfg.faults.p_worker_death > 0.0 {
        ChunkExecutor::with_exact_threads(cfg.threads)
            .with_faults(Arc::new(FaultInjector::new(cfg.faults)))
    } else {
        ChunkExecutor::new(cfg.threads)
    };
    if let Some(arc) = recorder {
        executor = executor.with_recorder(Arc::clone(arc));
    }
    executor
}
