//! The gate-batching extension: a run of chunk-local ops shares a single
//! chunk round trip. Batching is a *pipeline shape* change (one Fetch /
//! many Kernels / one Writeback per chunk), so it is driven here rather
//! than through the per-gate stage hooks — but it reuses the same
//! helpers ([`super::deal_gpu`], [`super::admit_window`],
//! [`super::encode_member`]) and middleware, so every flag subset and
//! fault site composes identically.

use qgpu_circuit::access::GateAction;
use qgpu_circuit::fuse::{FusedOp, ProgramOp};
use qgpu_device::timeline::{Engine, TaskKind};
use qgpu_faults::SimError;
use qgpu_obs::{span_opt, Stage as ObsStage, Track};
use qgpu_sched::InvolvementTracker;

use crate::engine::flops_per_amp;

use super::middleware::{self, Resilience};
use super::Env;

/// Runs the batch beginning at `idx` (whose op is already known to be
/// chunk-local) and returns the index of the first op after it. The
/// batch length is bounded by [`crate::config::SimConfig::max_batch`],
/// which bounds involvement-staleness of the pruning decision — it is
/// evaluated once per batch.
pub(crate) fn run_batch(
    env: &mut Env,
    program: &[ProgramOp],
    mut idx: usize,
    compressing: bool,
) -> Result<usize, SimError> {
    // A corrupted involvement mask (decided once per batch) means no
    // chunk is provably zero: fall back to full-chunk execution.
    let prune_ok = match &env.resil {
        Some(rs) if env.spec.flags.pruning && rs.mask_corrupt(idx) => {
            env.tl.count_prune_fallback();
            if let Some(r) = env.rec {
                r.add("prune.fallbacks", 1);
                r.flight("prune_fallback", || {
                    format!("batch at op {idx}: corrupt involvement mask, full-chunk execution")
                });
            }
            false
        }
        _ => true,
    };
    let pruning = env.spec.flags.pruning && prune_ok;
    let cb = env.chunk_bits;
    let is_local = |a: &GateAction| a.mixing_qubits().iter().all(|&q| (q as u32) < cb);

    let first = program[idx]
        .unitary()
        .expect("run_batch starts on a unitary op");
    // Program index of `batch[0]`; batch ops are consecutive, so
    // `batch[i]` is op `base_idx + i` (the integrity checks key their
    // injection draws and violation reports on it).
    let base_idx = idx;
    let mut batch: Vec<&FusedOp> = vec![first];
    idx += 1;
    while idx < program.len() && batch.len() < env.cfg.max_batch {
        // Measurements and resets end the batch: collapse must see every
        // preceding kernel's amplitudes landed.
        let Some(next) = program[idx].unitary() else {
            break;
        };
        if !is_local(next.collapsed()) {
            break;
        }
        batch.push(next);
        idx += 1;
    }
    // Involvement after the whole batch decides what moves back; a chunk
    // provably zero *before* the batch stays zero through it (local gates
    // cannot move amplitude across chunks).
    let mut tracker_end = env.tracker;
    for f in &batch {
        tracker_end.involve_mask(f.qubit_mask());
    }
    // Chunk-index bits each op requires set (high controls).
    let control_masks: Vec<usize> = batch
        .iter()
        .map(|f| {
            f.collapsed()
                .control_qubits()
                .iter()
                .filter(|&&c| (c as u32) >= cb)
                .map(|&c| 1usize << (c as u32 - cb))
                .sum()
        })
        .collect();

    let num_chunks = 1usize << (env.num_qubits as u32 - cb);
    for chunk in 0..num_chunks {
        if pruning && env.tracker.chunk_is_zero(chunk, cb) {
            env.tl.count_pruned(batch.len() as u64);
            if let Some(r) = env.rec {
                r.add("chunks.pruned", batch.len() as u64);
            }
            if let Some(imw) = env.integ.as_mut() {
                // Zero (unallocated) chunks trivially hold no amplitude.
                if !env.state.is_zero_chunk(chunk) {
                    imw.check_zero_blocks(&env.state, std::iter::once(chunk), base_idx, env.rec)?;
                }
            }
            continue;
        }
        let applicable: Vec<usize> = (0..batch.len())
            .filter(|&i| chunk & control_masks[i] == control_masks[i])
            .collect();
        if applicable.is_empty() {
            continue;
        }
        batch_chunk(
            env,
            chunk,
            &batch,
            base_idx,
            &applicable,
            &tracker_end,
            pruning,
            compressing,
        )?;
    }
    if !env.spec.flags.overlap {
        let s = env.tl.schedule(
            Engine::Host,
            env.chain,
            env.cfg.platform.host.sync_latency,
            TaskKind::Sync,
            0,
        );
        env.chain = s.end;
    }
    env.tracker = tracker_end;
    Ok(idx)
}

/// One chunk's round trip through the batch: upload once, one kernel per
/// applicable op, download once.
#[allow(clippy::too_many_arguments)]
fn batch_chunk(
    env: &mut Env,
    chunk: usize,
    batch: &[&FusedOp],
    base_idx: usize,
    applicable: &[usize],
    tracker_end: &InvolvementTracker,
    pruning: bool,
    compressing: bool,
) -> Result<(), SimError> {
    let cfg = env.cfg;
    let cb = env.chunk_bits;
    let chunk_bytes = 16u64 << cb;
    let gpu = super::deal_gpu(env);
    let link = cfg.platform.link(gpu);
    let gspec = cfg.platform.gpu(gpu);

    // Upload once.
    let (h2d_bytes, raw_up_compressed) = match (compressing, env.compressed.get(&chunk)) {
        (true, Some(&sz)) => (sz as u64, chunk_bytes),
        _ => (chunk_bytes, 0),
    };
    let mut ready = env.epoch_floor;
    if let Some(&t) = env.last_d2h.get(&chunk) {
        ready = ready.max(t);
    }
    super::admit_window(env, gpu, 1, compressing, chunk_bytes, &mut ready);
    if let Some(rs) = env.resil.as_mut() {
        rs.seal_for_upload(&env.state, &[chunk], cb, |_| false);
    }
    let h2d = super::transfer::transfer_with_integrity(
        &mut env.tl,
        Engine::HostDmaOut,
        Engine::H2d(gpu),
        TaskKind::H2dCopy,
        ready,
        h2d_bytes,
        link,
        cfg.platform.host.copy_bw,
        env.resil.as_mut(),
        env.rec,
    )?;
    let mut compute_ready = h2d.end;
    if raw_up_compressed > 0 {
        let d = env.tl.schedule(
            Engine::GpuCompute(gpu),
            compute_ready,
            raw_up_compressed as f64 / gspec.codec_bw(env.codec_class),
            TaskKind::Decompress,
            raw_up_compressed,
        );
        compute_ready = d.end;
    }
    // One kernel per applicable op over the resident chunk.
    let mut kernel_service = 0.0f64;
    {
        let _g = span_opt(env.rec, Track::Main, ObsStage::Update, "update.batch");
        for &i in applicable {
            let stretch = super::kernel_stretch(env, gpu);
            let kernel_s = (chunk_bytes as f64 / gspec.update_bw() + gspec.kernel_launch) * stretch;
            let kernel = env.tl.schedule(
                Engine::GpuCompute(gpu),
                compute_ready,
                kernel_s,
                TaskKind::Kernel,
                chunk_bytes,
            );
            kernel_service += kernel_s;
            compute_ready = kernel.end;
            env.tl
                .add_flops((chunk_bytes as f64 / 16.0) * flops_per_amp(batch[i].collapsed()));
            if batch[i].is_fused() {
                env.tl.count_fused_kernel();
            }
            if env.integ.is_some() {
                super::integrity::apply_gate(
                    &mut env.integ,
                    &mut env.executor,
                    &mut env.state,
                    &mut env.tl,
                    env.rec,
                    batch[i],
                    base_idx + i,
                    &[chunk],
                    &[],
                    &[],
                )?;
            } else {
                let restarts = env.executor.try_apply_local_run(
                    &mut env.state,
                    batch[i].actions(),
                    &[chunk],
                )?;
                middleware::note_restarts(&mut env.tl, env.rec, restarts);
            }
        }
    }
    env.tl.count_processed(applicable.len() as u64);
    if let Some(r) = env.rec {
        r.add("chunks.processed", applicable.len() as u64);
        r.observe("chunk.bytes", chunk_bytes);
    }
    if let Some(o) = env.orch.as_mut() {
        // Pure kernel service time: queueing and codec spans would let
        // backlog leak into the pace estimate.
        o.group.record_task(gpu, kernel_service, chunk_bytes);
    }
    batch_download(
        env,
        chunk,
        gpu,
        compute_ready,
        tracker_end,
        pruning,
        compressing,
    )
}

/// The batch's single download: pruned-to-zero chunks don't move,
/// compressed chunks pay the encode pass and compress kernel, raw
/// fallbacks (and uncompressed subsets) pay the arrival re-tag.
#[allow(clippy::too_many_arguments)]
fn batch_download(
    env: &mut Env,
    chunk: usize,
    gpu: usize,
    compute_ready: f64,
    tracker_end: &InvolvementTracker,
    pruning: bool,
    compressing: bool,
) -> Result<(), SimError> {
    let cfg = env.cfg;
    let cb = env.chunk_bits;
    let chunk_bytes = 16u64 << cb;
    let gspec = cfg.platform.gpu(gpu);
    let mut d2h_ready = compute_ready;
    let mut d2h_bytes = 0u64;
    let mut sealed_at_encode = false;
    if pruning && tracker_end.chunk_is_zero(chunk, cb) {
        env.compressed.remove(&chunk);
    } else if compressing {
        // Injected encode failure: degrade to a raw transfer for this
        // chunk (no compress kernel, full bytes).
        if env.resil.as_mut().is_some_and(Resilience::codec_fails) {
            env.tl.count_codec_fallback();
            if let Some(r) = env.rec {
                let cname = env.codec.kind().name();
                r.add("codec.fallbacks", 1);
                r.flight("codec_fallback", || {
                    format!("chunk {chunk}: {cname} encode failed, moving raw")
                });
            }
            env.compressed.remove(&chunk);
            d2h_bytes = chunk_bytes;
        } else {
            let sz = {
                let _g = span_opt(
                    env.rec,
                    Track::Main,
                    ObsStage::Compress,
                    env.codec.kind().compress_span(),
                );
                super::encode_member(env, chunk)
            };
            sealed_at_encode = true;
            env.tl.record_compression(chunk_bytes, sz as u64);
            env.compressed.insert(chunk, sz);
            d2h_bytes = sz as u64;
            let cspan = env.tl.schedule(
                Engine::GpuCompute(gpu),
                d2h_ready,
                chunk_bytes as f64 / gspec.codec_bw(env.codec_class),
                TaskKind::Compress,
                chunk_bytes,
            );
            d2h_ready = cspan.end;
        }
    } else {
        d2h_bytes = chunk_bytes;
    }
    // Only a chunk that actually crossed the link raw pays an arrival
    // re-tag; encode-sealed chunks carried their tag and a
    // pruned-to-zero chunk never moved at all.
    if let Some(rs) = env.resil.as_mut() {
        if !sealed_at_encode && d2h_bytes > 0 {
            rs.verify_on_arrival(&env.state, &[chunk], cb, |_| false);
        }
    }
    let d2h = super::transfer::transfer_with_integrity(
        &mut env.tl,
        Engine::HostDmaIn,
        Engine::D2h(gpu),
        TaskKind::D2hCopy,
        d2h_ready,
        d2h_bytes,
        cfg.platform.link(gpu),
        cfg.platform.host.copy_bw,
        env.resil.as_mut(),
        env.rec,
    )?;
    env.last_d2h.insert(chunk, d2h.end);
    if env.spec.flags.overlap {
        env.windows[gpu].slots.push_back((d2h.end, 1));
        env.windows[gpu].inflight += 1;
    } else {
        env.chain = d2h.end;
    }
    Ok(())
}
