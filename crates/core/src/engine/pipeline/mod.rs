//! The composable chunk-pipeline stage graph.
//!
//! One engine executes every version. A `PipelineSpec` (see `spec`) reduces
//! the configured [`crate::Version`] (or an explicit
//! [`crate::OptFlags`] subset) to an execution mode plus optimization
//! flags; the streaming driver then walks a fixed list of per-chunk
//! stages — *Plan → Prune → Deal → Fetch → Decompress → Kernel →
//! Compress → Writeback → Sync* — each consulting only the flags, never
//! the version. Per gate the driver runs three hook passes over the
//! stage list:
//!
//! * `begin_gate` — gate-level work: the chunk plan, the pruning
//!   decision, the functional update, and the compressed-size pass;
//! * `on_task` — per chunk task, in plan order: deal to a device,
//!   modeled H2D, decompress, kernel, compress, modeled D2H;
//! * `end_gate` — window occupancy sampling and the per-gate sync.
//!
//! Cross-cutting concerns (integrity + fault injection, orchestration,
//! checkpoint barriers) are middleware (`middleware`) threaded through
//! the shared `Env`, not engine forks. The static-allocation baseline
//! is the one genuinely different execution mode and lives in
//! `static_alloc`, on the same middleware.

pub(crate) mod batch;
pub(crate) mod integrity;
pub(crate) mod middleware;
pub(crate) mod obs_mw;
pub(crate) mod spec;
pub(crate) mod stages;
pub(crate) mod static_alloc;
pub(crate) mod stochastic;
pub(crate) mod transfer;
pub(crate) mod xfer_stages;

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use qgpu_circuit::fuse::{FusedOp, ProgramOp};
use qgpu_circuit::Circuit;
use qgpu_compress::{codec_for_kind, Codec, CodecKind};
use qgpu_device::timeline::{Engine, Timeline};
use qgpu_device::{CodecClass, ExecutionReport};
use qgpu_faults::SimError;
use qgpu_math::Complex64;
use qgpu_obs::{span_opt, Recorder, Stage as ObsStage, Track};
use qgpu_sched::plan::GatePlan;
use qgpu_sched::residency::RoundRobin;
use qgpu_sched::InvolvementTracker;
use qgpu_statevec::{ChunkExecutor, ChunkedState};

use crate::checkpoint::Checkpoint;
use crate::config::SimConfig;
use crate::result::RunResult;

use integrity::IntegrityMw;
use middleware::{BarrierClock, CheckpointLayer, Orchestration, Resilience};
use spec::{ExecMode, PipelineSpec};

/// Per-chunk compressed size recorded as "the codec failed, move raw"
/// (see the codec-failure degradation path).
pub(crate) const RAW_FALLBACK: usize = usize::MAX;

/// Per-GPU double-buffer window: chunks in flight on the device.
#[derive(Default)]
pub(crate) struct Window {
    pub(crate) slots: VecDeque<(f64, usize)>, // (d2h end, chunks held)
    pub(crate) inflight: usize,
}

/// The streaming pipeline's shared environment: configuration, the
/// modeled timeline, functional state, and every piece of cross-gate
/// bookkeeping the stages read and write. Stages receive `&mut Env`
/// and borrow disjoint fields.
pub(crate) struct Env<'a> {
    pub(crate) cfg: &'a SimConfig,
    pub(crate) rec: Option<&'a Recorder>,
    pub(crate) spec: PipelineSpec,
    pub(crate) num_qubits: usize,
    pub(crate) num_gpus: usize,
    pub(crate) base_chunk_bits: u32,
    /// Fixed per-task cost in byte-equivalents at link speed: a round
    /// trip pays two transfer latencies and one kernel launch.
    pub(crate) overhead_bytes: f64,
    pub(crate) dynamic_chunks: bool,
    pub(crate) tl: Timeline,
    pub(crate) state: ChunkedState,
    pub(crate) executor: ChunkExecutor,
    pub(crate) tracker: InvolvementTracker,
    pub(crate) chunk_bits: u32,
    pub(crate) codec: Box<dyn Codec>,
    /// The configured codec's modeled-bandwidth class, cached so the
    /// Compress/Decompress stages don't re-derive it per task. The
    /// cascade uses its own blended class rather than per-pick classes:
    /// the modeled kernel time reflects the sampling pass plus the
    /// average winner, keeping the timeline independent of amplitude
    /// content ordering.
    pub(crate) codec_class: CodecClass,
    pub(crate) resil: Option<Resilience>,
    pub(crate) integ: Option<IntegrityMw>,
    pub(crate) orch: Option<Orchestration>,
    /// Per-device modeled compute backlog, refilled at each assignment.
    pub(crate) backlog: Vec<f64>,
    /// Compressed representation held by the CPU, per chunk (bytes).
    pub(crate) compressed: HashMap<usize, usize>,
    pub(crate) last_d2h: HashMap<usize, f64>,
    pub(crate) windows: Vec<Window>,
    pub(crate) epoch_floor: f64,
    /// Naive's single-stream chain.
    pub(crate) chain: f64,
    pub(crate) task_counter: usize,
    /// Compressed size of an all-zero chunk, per chunk_bits (cached).
    pub(crate) zero_chunk_size: HashMap<u32, usize>,
    pub(crate) rr: RoundRobin,
}

/// Per-gate context threaded through the stage hooks.
pub(crate) struct GateCtx<'p> {
    pub(crate) fop: &'p FusedOp,
    /// Program index *after* this op (the original loop's post-increment
    /// index — the injector's mask-corruption draw is keyed on it).
    pub(crate) idx: usize,
    pub(crate) plan: Option<GatePlan>,
    pub(crate) fpa: f64,
    /// Involvement after this op: decides which members move back.
    pub(crate) tracker_after: InvolvementTracker,
    pub(crate) pruning: bool,
    pub(crate) compressing: bool,
    pub(crate) num_chunks: usize,
    pub(crate) chunk_bytes: u64,
    /// Indices into `plan.tasks()` surviving the prune stage.
    pub(crate) task_ixs: Vec<usize>,
    /// GFC sizes for every member moving back this gate
    /// ([`RAW_FALLBACK`] marks an injected encode failure).
    pub(crate) new_sizes: HashMap<usize, usize>,
    /// Members marked [`RAW_FALLBACK`] this gate.
    pub(crate) raw_members: usize,
}

impl<'p> GateCtx<'p> {
    pub(crate) fn new(fop: &'p FusedOp, idx: usize, compressing: bool, env: &Env) -> Self {
        GateCtx {
            fop,
            idx,
            plan: None,
            fpa: 0.0,
            tracker_after: env.tracker,
            pruning: false,
            compressing,
            num_chunks: 1usize << (env.num_qubits as u32 - env.chunk_bits),
            chunk_bytes: 16u64 << env.chunk_bits,
            task_ixs: Vec::new(),
            new_sizes: HashMap::new(),
            raw_members: 0,
        }
    }

    /// The chunk plan, available from the Plan stage onward.
    pub(crate) fn plan(&self) -> &GatePlan {
        self.plan.as_ref().expect("Plan stage ran")
    }
}

/// Per-task context threaded through the `on_task` hooks.
pub(crate) struct TaskCtx {
    pub(crate) task_ix: usize,
    pub(crate) gpu: usize,
    pub(crate) compute_ready: f64,
    pub(crate) h2d_bytes: u64,
    /// Raw bytes arriving compressed (decompress kernel input).
    pub(crate) raw_up_compressed: u64,
    pub(crate) d2h_ready: f64,
    pub(crate) d2h_bytes: u64,
    /// Raw bytes departing compressed (compress kernel input).
    pub(crate) raw_down_compressed: u64,
}

impl TaskCtx {
    pub(crate) fn new(task_ix: usize) -> Self {
        TaskCtx {
            task_ix,
            gpu: 0,
            compute_ready: 0.0,
            h2d_bytes: 0,
            raw_up_compressed: 0,
            d2h_ready: 0.0,
            d2h_bytes: 0,
            raw_down_compressed: 0,
        }
    }
}

/// The configured codec, sized for the current chunk width. For GFC (and
/// the cascade's GFC member): one segment per warp, but never so many
/// that a segment degrades to a single (history-less) micro-chunk — keep
/// ≥ 8 micro-chunks of 32 doubles per segment. (The paper: "we
/// empirically choose the number of segments to match the GPU
/// parallelism".)
pub(crate) fn codec_for(cfg: &SimConfig, chunk_bits: u32) -> Box<dyn Codec> {
    let doubles = 2usize << chunk_bits;
    codec_for_kind(cfg.codec(), (doubles / 256).clamp(1, cfg.compress_segments))
}

/// Maps the configured codec to its modeled-bandwidth class in the
/// device specs.
pub(crate) fn codec_class_of(kind: CodecKind) -> CodecClass {
    match kind {
        CodecKind::Gfc => CodecClass::Gfc,
        CodecKind::ZeroRun => CodecClass::ZeroRun,
        CodecKind::Alp => CodecClass::Alp,
        CodecKind::Cascade => CodecClass::Cascade,
    }
}

/// Deals the next task to a device: the orchestrator's group (with
/// work-stealing) when present, plain round-robin otherwise.
pub(crate) fn deal_gpu(env: &mut Env) -> usize {
    let gpu = match env.orch.as_mut() {
        Some(o) => {
            // Backlogs only matter for victim selection, so a
            // healthy (un-armed) fleet skips gathering them.
            if o.group.steal_armed() {
                for (g, b) in env.backlog.iter_mut().enumerate() {
                    *b = env.tl.engine_available(Engine::GpuCompute(g));
                }
            }
            let (g, stolen) = o.group.assign(env.task_counter, &env.backlog);
            if stolen {
                env.tl.count_steal();
                if let Some(r) = env.rec {
                    r.add("orch.steals", 1);
                }
            }
            g
        }
        None => env.rr.gpu_for_task(env.task_counter),
    };
    env.task_counter += 1;
    gpu
}

/// Admission control ahead of an upload of `incoming` chunks: under the
/// overlap flag the per-GPU double-buffer window (half the device memory,
/// paper §IV-A) drains oldest-first until the task fits; without it the
/// single-stream chain serializes. Either way the governor's budget cap
/// clamps on top and residency is sampled for the report.
pub(crate) fn admit_window(
    env: &mut Env,
    gpu: usize,
    incoming: usize,
    compressing: bool,
    chunk_bytes: u64,
    ready: &mut f64,
) {
    if env.spec.flags.overlap {
        let gspec = env.cfg.platform.gpu(gpu);
        let base_cap = ((gspec.mem_bytes as f64 * env.cfg.buffer_split) as u64 / chunk_bytes)
            .max(incoming as u64) as usize;
        let inflight = env.windows[gpu].inflight;
        let cap = match env.orch.as_mut() {
            Some(o) => o.governed_cap(
                base_cap,
                inflight,
                incoming,
                env.chunk_bits,
                chunk_bytes,
                compressing,
                &mut env.tl,
                env.rec,
            ),
            None => base_cap,
        };
        let w = &mut env.windows[gpu];
        while w.inflight + incoming > cap {
            match w.slots.pop_front() {
                Some((end, held)) => {
                    *ready = (*ready).max(end);
                    w.inflight -= held;
                }
                None => break,
            }
        }
        if env.orch.as_ref().is_some_and(|o| o.governor.is_some()) {
            env.tl
                .observe_resident_bytes((w.inflight + incoming) as u64 * chunk_bytes);
        }
    } else {
        *ready = (*ready).max(env.chain);
        if let Some(o) = env.orch.as_mut() {
            o.governed_cap(
                incoming,
                0,
                incoming,
                env.chunk_bits,
                chunk_bytes,
                compressing,
                &mut env.tl,
                env.rec,
            );
            if o.governor.is_some() {
                env.tl.observe_resident_bytes(incoming as u64 * chunk_bytes);
            }
        }
    }
}

/// Modeled-time multiplier for the next kernel on `gpu`: the injected
/// stage slowdown times the device's straggler factor (1.0 without
/// resilience).
pub(crate) fn kernel_stretch(env: &mut Env, gpu: usize) -> f64 {
    env.resil.as_mut().map_or(1.0, |rs| {
        rs.kernel_stretch() * rs.inj.straggler_stretch(gpu)
    })
}

/// Real compressed size of member `m` under the configured codec (the
/// cached all-zero size for untouched chunks), sealing the integrity tag
/// at encode time.
pub(crate) fn encode_member(env: &mut Env, m: usize) -> usize {
    let raw = 16usize << env.chunk_bits;
    match env.state.chunk(m) {
        Some(amps) => {
            if let Some(rs) = env.resil.as_mut() {
                rs.seal_at_encode(m, amps);
            }
            transfer::compressed_size(&*env.codec, amps, raw, env.rec)
        }
        None => {
            if let Some(rs) = env.resil.as_mut() {
                rs.seal_zero_at_encode(m, env.chunk_bits);
            }
            let Env {
                codec,
                zero_chunk_size,
                rec,
                chunk_bits,
                ..
            } = env;
            *zero_chunk_size.entry(*chunk_bits).or_insert_with(|| {
                let zeros = vec![Complex64::ZERO; 1usize << *chunk_bits];
                transfer::compressed_size(&**codec, &zeros, raw, *rec)
            })
        }
    }
}

/// Dynamic chunk sizing (Algorithm 1's getChunkSize), with the
/// governor's ShrinkChunks ceiling applied on top. Re-partitioning is a
/// synchronization point: the pipeline drains and chunk-indexed caches
/// reset.
pub(crate) fn resize_chunks(env: &mut Env) {
    let mut nb = if env.dynamic_chunks {
        env.tracker
            .optimal_chunk_bits(env.base_chunk_bits, env.overhead_bytes)
    } else {
        env.base_chunk_bits
    };
    if let Some(cap) = env.orch.as_ref().and_then(|o| o.bits_cap) {
        nb = nb.min(cap);
    }
    if nb != env.chunk_bits {
        if let Some(r) = env.rec {
            let old = env.chunk_bits;
            r.flight("repartition", || format!("chunk_bits {old} -> {nb}"));
        }
        env.chunk_bits = nb;
        env.state.set_chunk_bits(nb);
        env.codec = codec_for(env.cfg, nb);
        env.epoch_floor = env.tl.makespan();
        env.chain = env.chain.max(env.epoch_floor);
        env.last_d2h.clear();
        env.compressed.clear();
        if let Some(rs) = env.resil.as_mut() {
            rs.on_repartition();
        }
        if let Some(mw) = env.integ.as_mut() {
            // Norm/peak tables are chunk-indexed: recompute for the new
            // partition.
            mw.rebuild(&env.state);
        }
        for w in &mut env.windows {
            w.slots.clear();
            w.inflight = 0;
        }
    }
}

/// Drains a device the health board quarantined through the
/// orchestrator's existing device-loss re-shard path. Without
/// orchestration — or when the quarantined device is the last one
/// standing — the quarantine is recorded (board state, counters, flight
/// event) but the device keeps its shard: correctness is already
/// guaranteed by repair-by-re-execution, so draining is an availability
/// optimization, never worth killing the run over.
pub(crate) fn drain_quarantine(env: &mut Env) -> Result<(), SimError> {
    let Some(dev) = env
        .integ
        .as_mut()
        .and_then(IntegrityMw::take_pending_quarantine)
    else {
        return Ok(());
    };
    if let Some(o) = env.orch.as_mut() {
        if o.group.alive_devices() > 1 && o.group.is_alive(dev) {
            middleware::handle_device_loss(
                dev,
                o,
                &mut env.tl,
                &mut env.windows,
                &mut env.epoch_floor,
                &mut env.chain,
                env.cfg,
                env.rec,
            )?;
        }
    }
    Ok(())
}

/// Engine entry point: apply the seeded noise rewrite (if configured),
/// resolve the spec, then dispatch to the static or streaming mode.
///
/// Noise is inserted *before* reordering and fusion, so every version
/// and flag subset executes the identical noisy circuit — the rewrite is
/// a pure function of `(circuit, stoch_seed)`, never of the engine path.
pub(crate) fn run(
    circuit: &Circuit,
    cfg: &SimConfig,
    recorder: Option<&Arc<Recorder>>,
    resume: Option<&Checkpoint>,
) -> Result<RunResult, SimError> {
    let noised;
    let (circuit, noise_ops) = match cfg.effective_noise() {
        Some(nc) => {
            noised = nc.apply(circuit, cfg.stoch_seed);
            let added = (noised.len() - circuit.len()) as u64;
            (&noised, added)
        }
        None => (circuit, 0),
    };
    let spec = PipelineSpec::from_config(cfg);
    match spec.mode {
        ExecMode::Static => static_alloc::run(circuit, cfg, recorder, resume, noise_ops),
        ExecMode::Streaming => run_streaming(circuit, cfg, spec, recorder, resume, noise_ops),
    }
}

fn run_streaming(
    circuit: &Circuit,
    cfg: &SimConfig,
    spec: PipelineSpec,
    recorder: Option<&Arc<Recorder>>,
    resume: Option<&Checkpoint>,
    noise_ops: u64,
) -> Result<RunResult, SimError> {
    let rec = recorder.map(Arc::as_ref);
    let mut mw = obs_mw::ObsMw::new(rec, cfg, cfg.platform.num_gpus());
    let circuit_owned;
    let circuit = if spec.flags.reorder {
        // The forward-looking pass (§IV-C) runs first.
        circuit_owned = cfg.reorder_strategy.reorder_observed(circuit, rec);
        &circuit_owned
    } else {
        circuit
    };
    let n = circuit.num_qubits();

    // The executable program: fused runs (after any reorder) or a 1:1
    // lowering. Timing and chunk plans come from each op's collapsed
    // kernel; the functional update replays the member gates exactly.
    let program = {
        let _g = span_opt(rec, Track::Main, ObsStage::Plan, "engine.program");
        crate::engine::program_for(circuit, cfg)
    };
    let start = middleware::validate_resume(resume, n, program.len())?;

    let mut env = build_env(spec, cfg, rec, recorder, n, start, &program, resume);
    if start > 0 {
        middleware::note_resume_discard(start, rec);
        if let Some(mw) = env.integ.as_mut() {
            // A resumed state is not |0…0⟩: seed the tables from it.
            mw.rebuild(&env.state);
        }
    }
    let mut crng = stochastic::CollapseRng::new(cfg.stoch_seed, n, &program[..start]);
    let mut ckpt = CheckpointLayer::new(start);
    let mut clock = BarrierClock::new(cfg, start);
    let stages = stages::stage_list();
    mw.mark(obs_mw::SETUP);

    let mut idx = start;
    while idx < program.len() {
        if let Some(err) = cfg.cancel.as_ref().and_then(|t| t.poll_abort(idx)) {
            return Err(abort_run(err, env.state.dense_chunk_count(), rec, mw));
        }
        ckpt.before_op(idx, &env.state, cfg, rec)?;
        if let Some(o) = env.orch.as_mut() {
            if let Some(d) = clock.poll(idx, cfg, &mut o.group, env.num_gpus) {
                middleware::handle_device_loss(
                    d,
                    o,
                    &mut env.tl,
                    &mut env.windows,
                    &mut env.epoch_floor,
                    &mut env.chain,
                    cfg,
                    rec,
                )?;
            }
        }
        resize_chunks(&mut env);

        // Whether chunks move compressed this op: the flag subset's own
        // choice, or the governor's ForceCompress rung.
        let compressing =
            spec.flags.compression || env.orch.as_ref().is_some_and(|o| o.force_compress);
        let fop = match &program[idx] {
            ProgramOp::Unitary(f) => f,
            // A collapse barrier: drain the pipeline, draw, project.
            // (The measured qubit joins the involvement mask so live
            // and resume-replayed trackers agree; that is conservative
            // — collapse never creates amplitude — so pruning stays
            // sound.)
            &ProgramOp::Measure { qubit } | &ProgramOp::Reset { qubit } => {
                let is_reset = matches!(program[idx], ProgramOp::Reset { .. });
                // The whole-state norm gate: the state must still be
                // normalized before a collapse consumes it.
                if let Some(imw) = env.integ.as_mut() {
                    imw.check_whole_state(&env.state, idx, rec)?;
                }
                idx += 1;
                mw.mark(obs_mw::DRIVER);
                let u = crng.draw(qubit);
                stochastic::collapse_streaming(&mut env, qubit, is_reset, u);
                env.tracker.involve_mask(1u64 << qubit);
                if let Some(imw) = env.integ.as_mut() {
                    // Projection + renormalization reset every norm.
                    imw.rebuild(&env.state);
                }
                mw.mark(obs_mw::MEASURE);
                continue;
            }
        };
        let cb = env.chunk_bits;
        let local = fop
            .collapsed()
            .mixing_qubits()
            .iter()
            .all(|&q| (q as u32) < cb);
        if spec.batching && local {
            mw.gate_begin();
            idx = batch::run_batch(&mut env, &program, idx, compressing)?;
            mw.mark(obs_mw::KERNEL);
            mw.gate_done();
            drain_quarantine(&mut env)?;
            continue;
        }
        idx += 1;

        let mut g = GateCtx::new(fop, idx, compressing, &env);
        mw.gate_begin();
        for (si, s) in stages.iter().enumerate() {
            s.begin_gate(&mut g, &mut env)?;
            mw.mark(obs_mw::stage_bucket(si));
        }
        let ixs = g.task_ixs.clone();
        for task_ix in ixs {
            let mut t = TaskCtx::new(task_ix);
            for s in &stages {
                s.on_task(&mut t, &mut g, &mut env)?;
            }
            mw.task_done(t.gpu);
        }
        for (si, s) in stages.iter().enumerate() {
            s.end_gate(&mut g, &mut env)?;
            mw.mark(obs_mw::stage_bucket(si));
        }
        mw.gate_done();
        env.tracker = g.tracker_after;
        drain_quarantine(&mut env)?;
    }

    if let (Some(rs), Some(r)) = (env.resil.as_ref(), rec) {
        r.add("integrity.retags", rs.retags);
    }
    // The whole-state norm gate ahead of readout: the last line of
    // defense before samples leave the engine.
    if let Some(imw) = env.integ.as_mut() {
        imw.check_whole_state(&env.state, program.len(), rec)?;
    }
    mw.mark(obs_mw::DRIVER);
    let samples = stochastic::sample_readout(&env.state, cfg, &mut env.tl, rec);
    mw.mark(obs_mw::SAMPLE);
    mw.finish();
    env.tl.set_noise_ops(noise_ops);
    let report = ExecutionReport::from_timeline(&env.tl, env.num_gpus);
    Ok(RunResult {
        version: cfg.version,
        circuit_name: circuit.name().to_string(),
        state: cfg.collect_state.then(|| env.state.to_flat()),
        report,
        trace: env.tl.trace().to_vec(),
        obs: None,
        samples,
        integrity: env.integ.as_ref().map(|m| m.summary),
    })
}

/// The cooperative-cancellation exit, shared by both execution modes:
/// stopping at a gate boundary means the functional state is consistent
/// and simply dropped — record what is released, flush the partial
/// per-stage timings gathered so far (the post-mortem's "where did the
/// cancelled run spend its time"), then surface the abort error.
pub(crate) fn abort_run(
    err: SimError,
    released_chunks: usize,
    rec: Option<&Recorder>,
    mw: obs_mw::ObsMw,
) -> SimError {
    if let Some(r) = rec {
        r.add("cancel.aborts", 1);
        r.flight("abort", || {
            format!("{err}; releasing {released_chunks} resident chunk(s)")
        });
    }
    mw.finish();
    err
}

#[allow(clippy::too_many_arguments)]
fn build_env<'a>(
    spec: PipelineSpec,
    cfg: &'a SimConfig,
    rec: Option<&'a Recorder>,
    recorder: Option<&Arc<Recorder>>,
    n: usize,
    start: usize,
    program: &[ProgramOp],
    resume: Option<&Checkpoint>,
) -> Env<'a> {
    let base_chunk_bits = cfg.chunk_bits_for(n);
    let num_gpus = cfg.platform.num_gpus();
    let overhead_bytes = (2.0 * cfg.platform.link(0).latency + cfg.platform.gpu(0).kernel_launch)
        * cfg.platform.link(0).bw_per_direction;

    // Involvement replays instantly for the skipped prefix: masks are
    // pure functions of the program, no amplitudes needed.
    let mut tracker = InvolvementTracker::new(n);
    for op in &program[..start] {
        tracker.involve_mask(op.qubit_mask());
    }
    let dynamic_chunks = spec.flags.pruning && cfg.dynamic_chunk_size;
    let chunk_bits = if dynamic_chunks {
        tracker.optimal_chunk_bits(base_chunk_bits, overhead_bytes)
    } else {
        base_chunk_bits
    };
    let state = match resume {
        Some(ck) => ChunkedState::from_flat(&ck.state, chunk_bits),
        None => ChunkedState::new_zero(n, chunk_bits),
    };
    let mut tl = if cfg.trace_events > 0 {
        Timeline::with_trace(cfg.trace_events)
    } else {
        Timeline::new()
    };
    tl.set_gates_fused(qgpu_circuit::fuse::program_gates_fused(program) as u64);

    Env {
        cfg,
        rec,
        spec,
        num_qubits: n,
        num_gpus,
        base_chunk_bits,
        overhead_bytes,
        dynamic_chunks,
        tl,
        state,
        executor: middleware::build_executor(cfg, recorder),
        tracker,
        chunk_bits,
        codec: codec_for(cfg, chunk_bits),
        codec_class: codec_class_of(cfg.codec()),
        resil: cfg.resilience_active().then(|| Resilience::new(cfg)),
        integ: cfg
            .integrity_active()
            .then(|| IntegrityMw::new(cfg, n, chunk_bits)),
        // Resilient multi-device orchestration: explicit opt-in, or
        // implied by any configured device-level fault.
        orch: cfg
            .effective_orchestration()
            .map(|o| Orchestration::new(num_gpus, o, cfg)),
        backlog: vec![0.0; num_gpus],
        compressed: HashMap::new(),
        last_d2h: HashMap::new(),
        windows: (0..num_gpus).map(|_| Window::default()).collect(),
        epoch_floor: 0.0,
        chain: 0.0,
        task_counter: 0,
        zero_chunk_size: HashMap::new(),
        rr: RoundRobin::new(num_gpus),
    }
}
