//! Stochastic execution: seeded mid-circuit collapse and end-of-circuit
//! shot sampling, shared by the streaming and static modes.
//!
//! All randomness flows through [`qgpu_math::rng::unit_draw`], keyed so
//! that every draw is a pure function of `(stoch_seed, site)` — never of
//! execution order, thread count, device count, or flag subset:
//!
//! * **collapse draws** are keyed by `(qubit, occurrence)` — the k-th
//!   measurement/reset of qubit `q` consumes the same draw in any valid
//!   gate order, because the dependency DAG totally orders operations on
//!   a shared qubit (reordering can only move *other* qubits' work
//!   around a collapse, never the collapse itself);
//! * **sampling draws** are keyed by shot index (see
//!   [`qgpu_statevec::measure::seeded_counts_chunked`]).
//!
//! A collapse is a full pipeline synchronization point: probabilities
//! are read on the host from the authoritative state, so every in-flight
//! chunk must land first, and every cached compressed form is stale
//! after the renormalization pass. The modeled cost is two host passes
//! over the resident amplitudes (reduce + scale) and a sync.

use qgpu_circuit::fuse::ProgramOp;
use qgpu_device::timeline::{Engine, TaskKind, Timeline};
use qgpu_math::rng::{unit_draw, SALT_COLLAPSE};
use qgpu_obs::{span_opt, Recorder, Stage as ObsStage, Track};
use qgpu_statevec::{measure, ChunkedState};

use crate::config::SimConfig;

use super::Env;

/// The seeded source of collapse draws for one run.
///
/// Occurrence counters replay instantly for a resumed run's skipped
/// prefix — they are a pure function of the program, no amplitudes
/// needed — so a run resumed from a checkpoint consumes exactly the
/// draws the uninterrupted run would have.
pub(crate) struct CollapseRng {
    seed: u64,
    /// Per-qubit count of collapses already drawn.
    occ: Vec<u64>,
}

impl CollapseRng {
    /// A collapse stream for `seed`, fast-forwarded over `prefix` (the
    /// program ops a resumed run skips).
    pub(crate) fn new(seed: u64, num_qubits: usize, prefix: &[ProgramOp]) -> Self {
        let mut occ = vec![0u64; num_qubits];
        for op in prefix {
            match op {
                ProgramOp::Measure { qubit } | ProgramOp::Reset { qubit } => occ[*qubit] += 1,
                ProgramOp::Unitary(_) => {}
            }
        }
        CollapseRng { seed, occ }
    }

    /// The next collapse draw for `qubit`, in `[0, 1)`.
    pub(crate) fn draw(&mut self, qubit: usize) -> f64 {
        let site = ((qubit as u64) << 32) | self.occ[qubit];
        self.occ[qubit] += 1;
        unit_draw(self.seed, SALT_COLLAPSE, site, 0)
    }
}

/// Functionally collapses `qubit` using draw `u`: measure semantics
/// (project + renormalize) or reset semantics (project + renormalize +
/// move any `|1⟩` amplitude to `|0⟩`). Returns the recorded outcome.
pub(crate) fn collapse_state(
    state: &mut ChunkedState,
    qubit: usize,
    is_reset: bool,
    u: f64,
) -> bool {
    let p1 = measure::prob_one_chunked(state, qubit);
    let outcome = u < p1;
    let p_outcome = if outcome { p1 } else { 1.0 - p1 };
    if is_reset {
        measure::reset_chunked(state, qubit, outcome, p_outcome);
    } else {
        measure::collapse_chunked(state, qubit, outcome, p_outcome);
    }
    outcome
}

/// Models the collapse's host-side cost starting at `ready`: a reduce
/// pass (read every resident amplitude for the probability), a scale
/// pass (renormalize in place), and the host↔device sync. Returns the
/// sync's end.
pub(crate) fn collapse_cost(tl: &mut Timeline, cfg: &SimConfig, ready: f64, bytes: u64) -> f64 {
    let bw = cfg.platform.host.chunked_update_bw();
    // The reduce + scale passes are collapse work, not generic host
    // update: credit them to the Measure drift phase.
    tl.add_measure_time(2.0 * bytes as f64 / bw);
    let reduce = tl.schedule(
        Engine::Host,
        ready,
        bytes as f64 / bw,
        TaskKind::HostUpdate,
        bytes,
    );
    let scale = tl.schedule(
        Engine::Host,
        reduce.end,
        bytes as f64 / bw,
        TaskKind::HostUpdate,
        bytes,
    );
    let sync = tl.schedule(
        Engine::Host,
        scale.end,
        cfg.platform.host.sync_latency,
        TaskKind::Sync,
        0,
    );
    sync.end
}

/// A collapse op in the streaming pipeline: drain every in-flight chunk
/// (same discipline as a re-partition — chunk-indexed caches reset, the
/// epoch floor advances), pay the modeled host cost, then collapse the
/// authoritative state.
pub(crate) fn collapse_streaming(env: &mut Env, qubit: usize, is_reset: bool, u: f64) {
    let _g = span_opt(
        env.rec,
        Track::Main,
        ObsStage::Measure,
        if is_reset {
            "collapse.reset"
        } else {
            "collapse.measure"
        },
    );
    let floor = env.tl.makespan();
    env.epoch_floor = env.epoch_floor.max(floor);
    env.last_d2h.clear();
    env.compressed.clear();
    if let Some(rs) = env.resil.as_mut() {
        rs.on_repartition();
    }
    for w in &mut env.windows {
        w.slots.clear();
        w.inflight = 0;
    }
    let bytes = env.state.memory_bytes() as u64;
    let end = collapse_cost(&mut env.tl, env.cfg, env.epoch_floor, bytes);
    env.epoch_floor = env.epoch_floor.max(end);
    env.chain = env.chain.max(end);
    let outcome = collapse_state(&mut env.state, qubit, is_reset, u);
    env.tl.count_collapse();
    if let Some(r) = env.rec {
        r.add("stoch.collapses", 1);
        r.flight("collapse", || {
            let kind = if is_reset { "reset" } else { "measure" };
            format!("{kind} qubit {qubit} -> {}", u8::from(outcome))
        });
    }
}

/// End-of-circuit seeded readout: `cfg.shots` draws against the final
/// distribution, with one modeled host pass over the resident amplitudes
/// (the CDF sweep). Returns `None` when no shots were requested.
pub(crate) fn sample_readout(
    state: &ChunkedState,
    cfg: &SimConfig,
    tl: &mut Timeline,
    rec: Option<&Recorder>,
) -> Option<Vec<(usize, u64)>> {
    if cfg.shots == 0 {
        return None;
    }
    let _g = span_opt(rec, Track::Main, ObsStage::Sample, "readout.sample");
    let bytes = state.memory_bytes() as u64;
    let bw = cfg.platform.host.chunked_update_bw();
    // The CDF sweep is sampling work: credit it to the Sample drift phase.
    tl.add_sample_time(bytes as f64 / bw);
    tl.schedule(
        Engine::Host,
        tl.makespan(),
        bytes as f64 / bw,
        TaskKind::HostUpdate,
        bytes,
    );
    tl.set_shots(cfg.shots);
    if let Some(r) = rec {
        r.add("stoch.shots", cfg.shots);
    }
    Some(measure::seeded_counts_chunked(
        state,
        cfg.shots,
        cfg.stoch_seed,
        0,
    ))
}
