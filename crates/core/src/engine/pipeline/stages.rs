//! The per-chunk stage graph: the [`Stage`] trait and the compute-side
//! stages (Plan, Prune, Deal, Kernel, Sync). The transfer-side stages
//! (Fetch, Decompress, Compress, Writeback) live in
//! [`super::xfer_stages`].
//!
//! Stage bodies consult only [`super::Env::spec`]'s flags — never the
//! configured version — so any flag subset composes.

use qgpu_device::timeline::{Engine, TaskKind};
use qgpu_faults::SimError;
use qgpu_sched::plan::{ChunkTask, GatePlan};

use crate::engine::flops_per_amp;

use super::xfer_stages::{CompressStage, DecompressStage, FetchStage, WritebackStage};
use super::{Env, GateCtx, TaskCtx};

/// One stage of the per-chunk pipeline. Hooks default to no-ops; each
/// stage overrides the granularities it acts at.
pub(crate) trait Stage {
    /// The stage's pipeline name (maps onto an observability span
    /// category via [`qgpu_obs::Stage::for_pipeline`]).
    fn name(&self) -> &'static str;

    /// Gate-level work, before any task runs.
    fn begin_gate(&self, _g: &mut GateCtx, _env: &mut Env) -> Result<(), SimError> {
        Ok(())
    }

    /// Per chunk task, in plan order.
    fn on_task(&self, _t: &mut TaskCtx, _g: &mut GateCtx, _env: &mut Env) -> Result<(), SimError> {
        Ok(())
    }

    /// Gate-level work, after the last task.
    fn end_gate(&self, _g: &mut GateCtx, _env: &mut Env) -> Result<(), SimError> {
        Ok(())
    }
}

/// The streaming pipeline's stage list, in execution order. The hook
/// pass structure (all `begin_gate`s, then per task all `on_task`s,
/// then all `end_gate`s) reproduces the modeled schedule of the
/// original monolithic loop statement for statement.
pub(crate) fn stage_list() -> Vec<Box<dyn Stage>> {
    vec![
        Box::new(PlanStage),
        Box::new(PruneStage),
        Box::new(DealStage),
        Box::new(FetchStage),
        Box::new(DecompressStage),
        Box::new(KernelStage),
        Box::new(CompressStage),
        Box::new(WritebackStage),
        Box::new(SyncStage),
    ]
}

/// Plan: the gate's chunk plan, flops density, and post-op involvement.
pub(crate) struct PlanStage;

impl Stage for PlanStage {
    fn name(&self) -> &'static str {
        "plan"
    }

    fn begin_gate(&self, g: &mut GateCtx, env: &mut Env) -> Result<(), SimError> {
        let action = g.fop.collapsed();
        g.plan = Some(GatePlan::new_observed(
            action,
            env.chunk_bits,
            g.num_chunks,
            env.rec,
        ));
        g.fpa = flops_per_amp(action);
        g.tracker_after.involve_mask(g.fop.qubit_mask());
        Ok(())
    }
}

/// Prune: drop tasks whose chunks are provably zero under the
/// involvement mask (paper §IV-B), unless an injected mask corruption
/// forces full-chunk execution for this op.
pub(crate) struct PruneStage;

impl Stage for PruneStage {
    fn name(&self) -> &'static str {
        "prune"
    }

    fn begin_gate(&self, g: &mut GateCtx, env: &mut Env) -> Result<(), SimError> {
        // A corrupted involvement mask (decided once per op) means no
        // chunk is provably zero: fall back to full-chunk execution.
        let prune_ok = match &env.resil {
            Some(rs) if env.spec.flags.pruning && rs.mask_corrupt(g.idx) => {
                env.tl.count_prune_fallback();
                if let Some(r) = env.rec {
                    r.add("prune.fallbacks", 1);
                    r.flight("prune_fallback", || {
                        format!(
                            "op {}: corrupt involvement mask, full-chunk execution",
                            g.idx
                        )
                    });
                }
                false
            }
            _ => true,
        };
        g.pruning = env.spec.flags.pruning && prune_ok;

        let (task_ixs, kept_chunks, total) = {
            let plan = g.plan.as_ref().expect("Plan stage ran");
            let ixs: Vec<usize> = if g.pruning {
                plan.live_task_indices(&env.tracker)
            } else {
                (0..plan.tasks().len()).collect()
            };
            let kept: usize = ixs.iter().map(|&i| plan.tasks()[i].len()).sum();
            (ixs, kept, plan.total_chunks())
        };
        g.task_ixs = task_ixs;
        env.tl.count_pruned((total - kept_chunks) as u64);
        env.tl.count_processed(kept_chunks as u64);
        if let Some(r) = env.rec {
            r.add("chunks.pruned", (total - kept_chunks) as u64);
            r.add("chunks.processed", kept_chunks as u64);
            r.observe_n("chunk.bytes", g.chunk_bytes, kept_chunks as u64);
        }
        Ok(())
    }
}

/// Deal: assign the task to a device (orchestrated group or plain
/// round-robin, paper §V-E).
pub(crate) struct DealStage;

impl Stage for DealStage {
    fn name(&self) -> &'static str {
        "deal"
    }

    fn on_task(&self, t: &mut TaskCtx, _g: &mut GateCtx, env: &mut Env) -> Result<(), SimError> {
        t.gpu = super::deal_gpu(env);
        Ok(())
    }
}

/// Kernel: the functional update (gate level, before any modeled task —
/// surviving tasks touch disjoint chunks, so applying them all up front
/// leaves every per-chunk compressed size identical to updating inside
/// the task loop) and the modeled per-task update kernel.
pub(crate) struct KernelStage;

impl Stage for KernelStage {
    fn name(&self) -> &'static str {
        "kernel"
    }

    fn begin_gate(&self, g: &mut GateCtx, env: &mut Env) -> Result<(), SimError> {
        let plan = g.plan.as_ref().expect("Plan stage ran");
        let mut singles: Vec<usize> = Vec::new();
        let mut groups: Vec<&[usize]> = Vec::new();
        for &i in &g.task_ixs {
            match &plan.tasks()[i] {
                ChunkTask::Single(c) => singles.push(*c),
                ChunkTask::Group(grp) => groups.push(grp),
            }
        }
        // `g.idx` is the loop's post-increment index; the op itself is
        // one back.
        let op_idx = g.idx.saturating_sub(1);
        super::integrity::apply_gate(
            &mut env.integ,
            &mut env.executor,
            &mut env.state,
            &mut env.tl,
            env.rec,
            g.fop,
            op_idx,
            &singles,
            &groups,
            plan.high_mixing(),
        )?;
        // Zero-block invariant over the chunks the prune stage skipped.
        // Zero (unallocated) chunks trivially satisfy it, so the sweep
        // hands the checker only the dense pruned chunks — the ones
        // that could actually hold stray amplitude.
        if g.pruning {
            if let Some(imw) = env.integ.as_mut() {
                if imw.zero_sweep_due() {
                    let mut live = vec![false; plan.tasks().len()];
                    for &i in &g.task_ixs {
                        live[i] = true;
                    }
                    let state = &env.state;
                    let pruned = plan
                        .tasks()
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| !live[i])
                        .flat_map(|(_, t)| t.chunks().iter().copied())
                        .filter(|&c| !state.is_zero_chunk(c));
                    imw.check_zero_blocks(state, pruned, op_idx, env.rec)?;
                }
            }
        }
        Ok(())
    }

    fn on_task(&self, t: &mut TaskCtx, g: &mut GateCtx, env: &mut Env) -> Result<(), SimError> {
        let members_len = g.plan().tasks()[t.task_ix].len();
        let task_bytes = members_len as u64 * g.chunk_bytes;
        let stretch = super::kernel_stretch(env, t.gpu);
        let gspec = env.cfg.platform.gpu(t.gpu);
        let kernel_s = (task_bytes as f64 / gspec.update_bw() + gspec.kernel_launch) * stretch;
        let kernel = env.tl.schedule(
            Engine::GpuCompute(t.gpu),
            t.compute_ready,
            kernel_s,
            TaskKind::Kernel,
            task_bytes,
        );
        env.tl.add_flops((task_bytes as f64 / 16.0) * g.fpa);
        if g.fop.is_fused() {
            env.tl.count_fused_kernel();
        }
        if let Some(o) = env.orch.as_mut() {
            // Pure kernel service time: queueing and codec spans
            // would let backlog leak into the pace estimate.
            o.group.record_task(t.gpu, kernel_s, task_bytes);
        }
        t.d2h_ready = kernel.end;
        Ok(())
    }
}

/// Sync: without the overlap flag, a full synchronization after every
/// gate (Naive's behavior).
pub(crate) struct SyncStage;

impl Stage for SyncStage {
    fn name(&self) -> &'static str {
        "sync"
    }

    fn end_gate(&self, _g: &mut GateCtx, env: &mut Env) -> Result<(), SimError> {
        if !env.spec.flags.overlap {
            let s = env.tl.schedule(
                Engine::Host,
                env.chain,
                env.cfg.platform.host.sync_latency,
                TaskKind::Sync,
                0,
            );
            env.chain = s.end;
        }
        Ok(())
    }
}
