//! The static-allocation execution mode: Qiskit-Aer-style baseline
//! (paper §III-B).
//!
//! Chunks `0..resident` are pinned in GPU memory (striped round-robin
//! across devices on multi-GPU platforms); the rest live on the host.
//! Per gate:
//!
//! * chunk tasks entirely on one device update there (GPU kernel or the
//!   host's *chunked* update path, which is slower than a plain loop —
//!   see [`qgpu_device::HostSpec::chunk_penalty`]);
//! * mixed tasks trigger the paper's **reactive chunk exchange**: the
//!   off-device members are copied in, the group updated, and the
//!   members copied back — synchronously, one task at a time;
//! * every gate ends with a host↔device synchronization.
//!
//! This reproduces the paper's Figure 2: with a large state vector
//! almost all time is CPU update, roughly 10% is exchange, and the GPU
//! is idle. Checkpoints, barriers, device loss, and the functional
//! update ride the same middleware as the streaming mode.

use std::sync::Arc;

use qgpu_circuit::fuse::{FusedOp, ProgramOp};
use qgpu_circuit::Circuit;
use qgpu_device::timeline::{Engine, TaskKind, Timeline};
use qgpu_device::ExecutionReport;
use qgpu_faults::{FaultInjector, SimError};
use qgpu_obs::{span_opt, Recorder, Stage as ObsStage, Track};
use qgpu_sched::devicegroup::DeviceGroup;
use qgpu_sched::plan::{ChunkTask, GatePlan};
use qgpu_statevec::{ChunkExecutor, ChunkedState};

use crate::checkpoint::Checkpoint;
use crate::config::SimConfig;
use crate::engine::flops_per_amp;
use crate::result::RunResult;

use super::integrity::IntegrityMw;
use super::middleware::{self, BarrierClock, CheckpointLayer};
use super::obs_mw::{self, ObsMw};
use super::stochastic::{self, CollapseRng};
use super::transfer::copy_with_dma;

/// Where a chunk lives under the striped static allocation.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Loc {
    Host,
    Gpu(usize),
}

/// The static mode's working state, threaded through the per-gate steps.
struct StaticRun<'a> {
    cfg: &'a SimConfig,
    rec: Option<&'a Recorder>,
    chunk_bits: u32,
    num_chunks: usize,
    chunk_bytes: u64,
    num_gpus: usize,
    resident: usize,
    alive: Vec<bool>,
    state: ChunkedState,
    tl: Timeline,
    executor: ChunkExecutor,
    gate_ready: f64,
    group: Option<DeviceGroup>,
    /// The device-fault injector (pure: replays the same draws as any
    /// other instance with the same seed).
    dev_inj: Option<FaultInjector>,
    transfer_ix: u64,
    integ: Option<IntegrityMw>,
}

pub(crate) fn run(
    circuit: &Circuit,
    cfg: &SimConfig,
    recorder: Option<&Arc<Recorder>>,
    resume: Option<&Checkpoint>,
    noise_ops: u64,
) -> Result<RunResult, SimError> {
    let rec = recorder.map(Arc::as_ref);
    let mut mw = ObsMw::new(rec, cfg, cfg.platform.num_gpus());
    let n = circuit.num_qubits();
    let program = {
        let _g = span_opt(rec, Track::Main, ObsStage::Plan, "engine.program");
        crate::engine::program_for(circuit, cfg)
    };
    let start = middleware::validate_resume(resume, n, program.len())?;
    let mut sr = StaticRun::new(cfg, rec, recorder, n, &program, resume);
    if start > 0 {
        middleware::note_resume_discard(start, rec);
        if let Some(imw) = sr.integ.as_mut() {
            // A resumed state is not |0…0⟩: seed the tables from it.
            imw.rebuild(&sr.state);
        }
    }
    let mut crng = CollapseRng::new(cfg.stoch_seed, n, &program[..start]);
    let mut ckpt = CheckpointLayer::new(start);
    let mut clock = BarrierClock::new(cfg, start);
    mw.mark(obs_mw::SETUP);

    for (idx, op) in program.iter().enumerate().skip(start) {
        if let Some(err) = cfg.cancel.as_ref().and_then(|t| t.poll_abort(idx)) {
            return Err(super::abort_run(err, sr.state.dense_chunk_count(), rec, mw));
        }
        ckpt.before_op(idx, &sr.state, cfg, rec)?;
        let lost = match sr.group.as_mut() {
            Some(gr) => clock.poll(idx, cfg, gr, sr.num_gpus),
            None => None,
        };
        if let Some(d) = lost {
            sr.on_loss(d)?;
        }
        // Static mode has no per-chunk stage hooks; attribution is
        // coarse — the whole update lands in `kernel`, collapses in
        // `measure`.
        match op {
            ProgramOp::Unitary(fop) => {
                mw.gate_begin();
                sr.gate_step(fop, idx)?;
                mw.mark(obs_mw::KERNEL);
                mw.gate_done();
            }
            &ProgramOp::Measure { qubit } => {
                if let Some(imw) = sr.integ.as_mut() {
                    imw.check_whole_state(&sr.state, idx, rec)?;
                }
                mw.mark(obs_mw::DRIVER);
                sr.collapse_step(qubit, false, crng.draw(qubit));
                if let Some(imw) = sr.integ.as_mut() {
                    imw.rebuild(&sr.state);
                }
                mw.mark(obs_mw::MEASURE);
            }
            &ProgramOp::Reset { qubit } => {
                if let Some(imw) = sr.integ.as_mut() {
                    imw.check_whole_state(&sr.state, idx, rec)?;
                }
                mw.mark(obs_mw::DRIVER);
                sr.collapse_step(qubit, true, crng.draw(qubit));
                if let Some(imw) = sr.integ.as_mut() {
                    imw.rebuild(&sr.state);
                }
                mw.mark(obs_mw::MEASURE);
            }
        }
        // A quarantine verdict from the board re-homes the device's
        // stripe to the host through the existing loss path (never for
        // the last device standing — correctness is already covered by
        // repair, so draining is purely an availability move).
        if let Some(d) = sr
            .integ
            .as_mut()
            .and_then(IntegrityMw::take_pending_quarantine)
        {
            let can_drain = sr
                .group
                .as_ref()
                .is_some_and(|g| g.alive_devices() > 1 && g.is_alive(d));
            if can_drain {
                sr.on_loss(d)?;
            }
        }
    }

    // The whole-state norm gate ahead of readout.
    if let Some(imw) = sr.integ.as_mut() {
        imw.check_whole_state(&sr.state, program.len(), rec)?;
    }
    mw.mark(obs_mw::DRIVER);
    let samples = stochastic::sample_readout(&sr.state, cfg, &mut sr.tl, rec);
    mw.mark(obs_mw::SAMPLE);
    mw.finish();
    sr.tl.set_noise_ops(noise_ops);
    let report = ExecutionReport::from_timeline(&sr.tl, sr.num_gpus);
    Ok(RunResult {
        version: cfg.version,
        circuit_name: circuit.name().to_string(),
        state: cfg.collect_state.then(|| sr.state.to_flat()),
        report,
        trace: sr.tl.trace().to_vec(),
        obs: None,
        samples,
        integrity: sr.integ.as_ref().map(|m| m.summary),
    })
}

impl<'a> StaticRun<'a> {
    fn new(
        cfg: &'a SimConfig,
        rec: Option<&'a Recorder>,
        recorder: Option<&Arc<Recorder>>,
        n: usize,
        program: &[ProgramOp],
        resume: Option<&Checkpoint>,
    ) -> Self {
        let chunk_bits = cfg.chunk_bits_for(n);
        let num_chunks = 1usize << (n as u32 - chunk_bits);
        let chunk_bytes = 16u64 << chunk_bits;
        let num_gpus = cfg.platform.num_gpus();

        // Static allocation: as many chunks as fit, striped across GPUs.
        // A configured residency budget caps each device below its
        // hardware capacity — the baseline's only degradation rung is
        // keeping fewer chunks resident (everything else already lives
        // on the host).
        let ocfg = cfg.effective_orchestration();
        let budget = ocfg.and_then(|o| o.mem_budget_bytes);
        let mut budget_capped = 0u64;
        let per_gpu_cap: Vec<usize> = (0..num_gpus)
            .map(|g| {
                let hw = cfg.platform.gpu_chunk_capacity(g, chunk_bytes);
                match budget {
                    Some(b) => {
                        let cap = (((b / chunk_bytes.max(1)) as usize).max(1)).min(hw);
                        if cap < hw {
                            budget_capped += 1;
                        }
                        cap
                    }
                    None => hw,
                }
            })
            .collect();
        let resident: usize = per_gpu_cap.iter().sum::<usize>().min(num_chunks);

        let state = match resume {
            Some(ck) => ChunkedState::from_flat(&ck.state, chunk_bits),
            None => ChunkedState::new_zero(n, chunk_bits),
        };
        let mut tl = if cfg.trace_events > 0 {
            Timeline::with_trace(cfg.trace_events)
        } else {
            Timeline::new()
        };

        // Orchestration bookkeeping: the device group tracks liveness and
        // barriers; the injector draws device-level faults.
        // (Work-stealing does not apply to a static allocation.)
        let group = ocfg.map(|o| {
            let mut g = DeviceGroup::new(num_gpus, o);
            // Replay logs only serve device loss; skip their per-task
            // pushes when no device fault can fire.
            g.set_replay_tracking(cfg.faults.device_faults_enabled());
            g
        });
        if budget.is_some() {
            for _ in 0..budget_capped {
                tl.count_pressure_downshift();
                if let Some(r) = rec {
                    r.add("orch.pressure_downshifts", 1);
                }
            }
            for g in 0..num_gpus {
                let cnt = (0..resident).filter(|c| c % num_gpus == g).count() as u64;
                tl.observe_resident_bytes(cnt * chunk_bytes);
            }
        }
        tl.set_gates_fused(qgpu_circuit::fuse::program_gates_fused(program) as u64);

        StaticRun {
            cfg,
            rec,
            chunk_bits,
            num_chunks,
            chunk_bytes,
            num_gpus,
            resident,
            alive: vec![true; num_gpus],
            state,
            tl,
            executor: middleware::build_executor(cfg, recorder),
            gate_ready: 0.0,
            group,
            dev_inj: cfg
                .faults
                .device_faults_enabled()
                .then(|| FaultInjector::new(cfg.faults)),
            transfer_ix: 0,
            integ: cfg
                .integrity_active()
                .then(|| IntegrityMw::new(cfg, n, chunk_bits)),
        }
    }

    /// Where a chunk lives, given which devices are still alive: a dead
    /// device's stripe re-homes to the host.
    fn loc(&self, chunk: usize) -> Loc {
        if chunk < self.resident {
            let g = chunk % self.num_gpus;
            if self.alive[g] {
                Loc::Gpu(g)
            } else {
                Loc::Host
            }
        } else {
            Loc::Host
        }
    }

    /// A device dropped out: its stripe re-homes to the host. Host state
    /// is authoritative, so the cost is a modeled restore from the last
    /// checkpoint barrier.
    fn on_loss(&mut self, d: usize) -> Result<(), SimError> {
        let gr = self.group.as_mut().expect("orchestrated");
        if !gr.is_alive(d) {
            return Ok(());
        }
        if gr.lose_device(d).is_none() {
            return Err(SimError::AllDevicesLost { device: d });
        }
        self.alive[d] = false;
        let moved = (0..self.resident)
            .filter(|c| c % self.num_gpus == d)
            .count() as u64;
        self.tl.count_device_lost();
        self.tl.count_chunks_migrated(moved);
        if let Some(r) = self.rec {
            r.add("orch.devices_lost", 1);
            r.add("orch.chunks_migrated", moved);
            r.flight("device_loss", || {
                format!("device {d} lost; {moved} resident chunk(s) re-homed to host")
            });
        }
        let restore = self.tl.schedule(
            Engine::Host,
            self.gate_ready,
            moved as f64 * self.chunk_bytes as f64 / self.cfg.platform.host.copy_bw,
            TaskKind::Sync,
            moved * self.chunk_bytes,
        );
        self.gate_ready = restore.end;
        Ok(())
    }

    /// A mid-circuit collapse: the host owns the authoritative state, so
    /// the cost is a reduce pass, a scale pass, and the per-gate sync —
    /// then the functional projection with the seeded draw `u`.
    fn collapse_step(&mut self, qubit: usize, is_reset: bool, u: f64) {
        let _g = span_opt(
            self.rec,
            Track::Main,
            ObsStage::Measure,
            if is_reset {
                "collapse.reset"
            } else {
                "collapse.measure"
            },
        );
        let bytes = self.state.memory_bytes() as u64;
        self.gate_ready = stochastic::collapse_cost(&mut self.tl, self.cfg, self.gate_ready, bytes);
        let outcome = stochastic::collapse_state(&mut self.state, qubit, is_reset, u);
        self.tl.count_collapse();
        if let Some(r) = self.rec {
            r.add("stoch.collapses", 1);
            r.flight("collapse", || {
                let kind = if is_reset { "reset" } else { "measure" };
                format!("{kind} qubit {qubit} -> {}", u8::from(outcome))
            });
        }
    }

    /// One program op: partition, update batches, reactive exchange,
    /// sync, then the functional update.
    fn gate_step(&mut self, fop: &FusedOp, op_idx: usize) -> Result<(), SimError> {
        let action = fop.collapsed();
        let plan = GatePlan::new_observed(action, self.chunk_bits, self.num_chunks, self.rec);
        let fpa = flops_per_amp(action);

        // Partition tasks: same-device batches vs. mixed groups.
        let mut host_bytes = 0u64;
        let mut gpu_bytes = vec![0u64; self.num_gpus];
        let mut mixed: Vec<&ChunkTask> = Vec::new();
        for task in plan.tasks() {
            let locs: Vec<Loc> = task.chunks().iter().map(|&c| self.loc(c)).collect();
            let bytes = task.len() as u64 * self.chunk_bytes;
            if locs.iter().all(|&l| l == Loc::Host) {
                host_bytes += bytes;
            } else if locs.windows(2).all(|w| w[0] == w[1]) {
                let Loc::Gpu(g) = locs[0] else { unreachable!() };
                gpu_bytes[g] += bytes;
            } else {
                mixed.push(task);
            }
            self.tl.count_processed(task.len() as u64);
            if let Some(r) = self.rec {
                r.add("chunks.processed", task.len() as u64);
                r.observe("chunk.bytes", self.chunk_bytes);
            }
        }

        let mut gate_end = self.gate_ready;
        if host_bytes > 0 {
            let t = host_bytes as f64 / self.cfg.platform.host.chunked_update_bw();
            let span = self.tl.schedule(
                Engine::Host,
                self.gate_ready,
                t,
                TaskKind::HostUpdate,
                host_bytes,
            );
            gate_end = gate_end.max(span.end);
        }
        for (g, &bytes) in gpu_bytes.iter().enumerate() {
            if bytes == 0 {
                continue;
            }
            let stretch = self
                .dev_inj
                .as_ref()
                .map_or(1.0, |i| i.straggler_stretch(g));
            let t = (bytes as f64 / self.cfg.platform.gpu(g).update_bw()
                + self.cfg.platform.gpu(g).kernel_launch)
                * stretch;
            let span = self.tl.schedule(
                Engine::GpuCompute(g),
                self.gate_ready,
                t,
                TaskKind::Kernel,
                bytes,
            );
            self.tl.add_flops((bytes as f64 / 16.0) * fpa);
            if fop.is_fused() {
                self.tl.count_fused_kernel();
            }
            gate_end = gate_end.max(span.end);
        }

        gate_end = gate_end.max(self.exchange(&mixed, fop, fpa, gate_end));

        // Per-gate synchronization between the scheduler and the device.
        let sync = self.tl.schedule(
            Engine::Host,
            gate_end,
            self.cfg.platform.host.sync_latency,
            TaskKind::Sync,
            0,
        );
        self.gate_ready = sync.end;

        // Functional update (identical across modes), after the sync.
        let mut singles: Vec<usize> = Vec::new();
        let mut groups: Vec<&[usize]> = Vec::new();
        for task in plan.tasks() {
            match task {
                ChunkTask::Single(c) => singles.push(*c),
                ChunkTask::Group(g) => groups.push(g),
            }
        }
        super::integrity::apply_gate(
            &mut self.integ,
            &mut self.executor,
            &mut self.state,
            &mut self.tl,
            self.rec,
            fop,
            op_idx,
            &singles,
            &groups,
            plan.high_mixing(),
        )
    }

    /// Reactive exchange: mixed groups processed synchronously, one at a
    /// time, on the primary GPU of the group — *after* the update
    /// batches, since the scheduler blocks when it reaches the boundary
    /// (the paper's Figure 2 splits the makespan into CPU time then
    /// exchange time). Returns the chain's end.
    fn exchange(&mut self, mixed: &[&ChunkTask], fop: &FusedOp, fpa: f64, gate_end: f64) -> f64 {
        let mut chain = gate_end;
        for task in mixed {
            let primary = task
                .chunks()
                .iter()
                .find_map(|&c| match self.loc(c) {
                    Loc::Gpu(g) => Some(g),
                    Loc::Host => None,
                })
                .unwrap_or_else(|| self.alive.iter().position(|&a| a).unwrap_or(0));
            let off_device_bytes: u64 = task
                .chunks()
                .iter()
                .filter(|&&c| self.loc(c) != Loc::Gpu(primary))
                .count() as u64
                * self.chunk_bytes;
            let link = self.cfg.platform.link(primary);
            let link_stretch = self.next_link_stretch();
            let h2d = copy_with_dma(
                &mut self.tl,
                Engine::HostDmaOut,
                Engine::H2d(primary),
                TaskKind::H2dCopy,
                chain,
                off_device_bytes,
                link,
                self.cfg.platform.host.copy_bw,
                link_stretch,
            );
            let group_bytes = task.len() as u64 * self.chunk_bytes;
            let kt = (group_bytes as f64 / self.cfg.platform.gpu(primary).update_bw()
                + self.cfg.platform.gpu(primary).kernel_launch)
                * self
                    .dev_inj
                    .as_ref()
                    .map_or(1.0, |i| i.straggler_stretch(primary));
            let kernel = self.tl.schedule(
                Engine::GpuCompute(primary),
                h2d.end,
                kt,
                TaskKind::Kernel,
                group_bytes,
            );
            self.tl.add_flops((group_bytes as f64 / 16.0) * fpa);
            if fop.is_fused() {
                self.tl.count_fused_kernel();
            }
            let down_stretch = self.next_link_stretch();
            let d2h = copy_with_dma(
                &mut self.tl,
                Engine::HostDmaIn,
                Engine::D2h(primary),
                TaskKind::D2hCopy,
                kernel.end,
                off_device_bytes,
                link,
                self.cfg.platform.host.copy_bw,
                down_stretch,
            );
            chain = d2h.end;
        }
        chain
    }

    /// The next transfer's injected link stretch (consumes a draw only
    /// when device faults are configured, matching the counter the
    /// streaming mode's injector would see).
    fn next_link_stretch(&mut self) -> f64 {
        match self.dev_inj.as_ref() {
            Some(i) => {
                let s = i.link_stretch(self.transfer_ix);
                self.transfer_ix += 1;
                if s > 1.0 {
                    self.tl.count_link_degradation();
                    if let Some(r) = self.rec {
                        r.add("link.degradations", 1);
                        r.flight("link_degraded", || {
                            format!("transfer {} stretched {s:.2}x", self.transfer_ix - 1)
                        });
                    }
                }
                s
            }
            None => 1.0,
        }
    }
}
