//! Per-stage wall-clock attribution middleware.
//!
//! `ObsMw` laps a single monotonic clock as the streaming driver moves
//! between stage hook passes, crediting each elapsed slice to the stage
//! (or driver bucket) that just ran. Per gate the accumulated slices
//! flush into the recorder's labeled [`qgpu_obs::Registry`]:
//!
//! * `stage.time_ns{stage=…,version=…}` — HDR histogram of per-gate time
//!   attributed to each stage, plus the pseudo-stages `setup`, `tasks`
//!   (the per-task hook loop), `measure`, `sample` and `driver` (loop
//!   overhead between hook passes). Histogram **sums** reconstruct the
//!   wall-clock breakdown; percentiles expose tail gates.
//! * `gate.ns{version=…}` — HDR histogram of whole-gate latency.
//! * `tasks{device=…,version=…}` — chunk tasks executed per device.
//!
//! Attribution is exhaustive by construction — every nanosecond between
//! construction and [`ObsMw::finish`] lands in exactly one bucket — so
//! the per-stage sums add up to the measured end-to-end wall clock (the
//! `qgpu-bench` perf harness asserts within 10%). Disabled (no
//! recorder), every method is a no-op with zero clock reads.

use std::time::Instant;

use qgpu_obs::Recorder;

use crate::config::SimConfig;

/// Attribution buckets: `setup`, one per streaming stage (in
/// `stages::stage_list()` order at `1 + stage_index`), then the
/// driver-level pseudo-stages.
pub(crate) const BUCKETS: [&str; 14] = [
    "setup",
    "plan",
    "prune",
    "deal",
    "fetch",
    "decompress",
    "kernel",
    "compress",
    "writeback",
    "sync",
    "tasks",
    "measure",
    "sample",
    "driver",
];

pub(crate) const SETUP: usize = 0;
/// Bucket for stage-list index `si` (Plan = 0 … Sync = 8).
pub(crate) const fn stage_bucket(si: usize) -> usize {
    1 + si
}
pub(crate) const KERNEL: usize = 6;
pub(crate) const TASKS: usize = 10;
pub(crate) const MEASURE: usize = 11;
pub(crate) const SAMPLE: usize = 12;
pub(crate) const DRIVER: usize = 13;

/// The per-stage wall-clock attribution middleware (see module docs).
pub(crate) struct ObsMw<'a> {
    rec: Option<&'a Recorder>,
    vlabel: String,
    last: Instant,
    gate_start: Instant,
    acc: [u64; BUCKETS.len()],
    device_tasks: Vec<u64>,
}

impl<'a> ObsMw<'a> {
    /// A new middleware lapping from "now". With `rec == None` every
    /// method no-ops (and this constructor's clock read is the last).
    pub(crate) fn new(rec: Option<&'a Recorder>, cfg: &SimConfig, num_gpus: usize) -> Self {
        let now = Instant::now();
        ObsMw {
            rec,
            vlabel: cfg
                .opts
                .as_ref()
                .map(|f| f.label())
                .unwrap_or_else(|| cfg.version.label().to_string()),
            last: now,
            gate_start: now,
            acc: [0; BUCKETS.len()],
            device_tasks: vec![0; num_gpus],
        }
    }

    /// Credits the time since the previous mark to `bucket`.
    #[inline]
    pub(crate) fn mark(&mut self, bucket: usize) {
        if self.rec.is_none() {
            return;
        }
        let now = Instant::now();
        self.acc[bucket] += now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
    }

    /// Starts a gate: loop work since the last mark is driver overhead,
    /// and the whole-gate latency clock starts here.
    #[inline]
    pub(crate) fn gate_begin(&mut self) {
        self.mark(DRIVER);
        self.gate_start = self.last;
    }

    /// Ends one task's hook loop: time laps into the `tasks` bucket and
    /// the executing device's task counter.
    #[inline]
    pub(crate) fn task_done(&mut self, gpu: usize) {
        self.mark(TASKS);
        if self.rec.is_some() {
            self.device_tasks[gpu] += 1;
        }
    }

    /// Ends a gate: flushes the accumulated per-stage slices into the
    /// registry histograms and records the whole-gate latency (reusing
    /// the final mark's clock read).
    pub(crate) fn gate_done(&mut self) {
        let Some(rec) = self.rec else {
            return;
        };
        let gate_ns = self.last.duration_since(self.gate_start).as_nanos() as u64;
        rec.registry()
            .observe("gate.ns", &[("version", &self.vlabel)], gate_ns);
        self.flush(rec);
    }

    /// Final flush: remaining slices (setup / measure / sample tails)
    /// plus the per-device task counters.
    pub(crate) fn finish(mut self) {
        let Some(rec) = self.rec else {
            return;
        };
        self.flush(rec);
        for (gpu, &n) in self.device_tasks.iter().enumerate() {
            if n > 0 {
                rec.registry().add(
                    "tasks",
                    &[("device", &gpu.to_string()), ("version", &self.vlabel)],
                    n,
                );
            }
        }
    }

    fn flush(&mut self, rec: &Recorder) {
        for (bucket, ns) in self.acc.iter_mut().enumerate() {
            if *ns > 0 {
                rec.registry().observe(
                    "stage.time_ns",
                    &[("stage", BUCKETS[bucket]), ("version", &self.vlabel)],
                    *ns,
                );
                *ns = 0;
            }
        }
    }
}
