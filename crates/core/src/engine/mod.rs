//! The execution engines: functional simulation driven through the device
//! timing model.
//!
//! [`Simulator`] dispatches on the configured [`Version`]:
//!
//! * [`Version::Baseline`] → [`baseline`]: static chunk allocation, CPU
//!   updates host chunks, reactive synchronous exchange;
//! * everything else → [`streaming`]: chunks stream through the GPU(s),
//!   with overlap / pruning / reordering / compression layered on
//!   according to the version.
//!
//! Both engines walk the same program of [`qgpu_circuit::fuse::FusedOp`]s
//! (one op per gate unless [`SimConfig::gate_fusion`] collapses runs),
//! resolve each op's [`qgpu_sched::GatePlan`], apply the amplitudes for
//! real on a [`qgpu_statevec::ChunkedState`] through the
//! [`qgpu_statevec::ChunkExecutor`] worker pool, and charge each chunk
//! task to the [`qgpu_device::Timeline`]. The result is a bit-identical
//! final state across versions, thread counts and fusion settings, with
//! version-specific timing.

pub mod baseline;
pub mod streaming;

use std::sync::Arc;

use qgpu_circuit::access::GateAction;
use qgpu_circuit::fuse::{self, FusedOp};
use qgpu_circuit::Circuit;
use qgpu_faults::SimError;
use qgpu_obs::Recorder;

use crate::checkpoint::Checkpoint;
use crate::config::{SimConfig, Version};
use crate::result::{ObsData, RunResult};

/// Lowers a circuit to the engines' executable program: fused runs when
/// [`SimConfig::gate_fusion`] is on, a 1:1 lowering otherwise.
pub(crate) fn program_for(circuit: &Circuit, cfg: &SimConfig) -> Vec<FusedOp> {
    if cfg.gate_fusion {
        fuse::fuse(circuit)
    } else {
        fuse::lower(circuit)
    }
}

/// Floating-point operations per amplitude for a gate action: a dense
/// matrix over `k` mixing qubits costs one `2^k`-point complex dot product
/// per amplitude; a diagonal action one complex multiply.
pub(crate) fn flops_per_amp(action: &GateAction) -> f64 {
    match action {
        GateAction::Diagonal { .. } => 6.0,
        GateAction::ControlledDense { matrix, .. } => matrix.dim() as f64 * 8.0,
    }
}

/// The Q-GPU simulator: runs circuits under a [`SimConfig`].
///
/// # Examples
///
/// ```
/// use qgpu::{SimConfig, Simulator, Version};
/// use qgpu_circuit::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let result = Simulator::new(SimConfig::scaled_paper(2).with_version(Version::Baseline))
///     .run(&bell);
/// let state = result.state.expect("collected");
/// assert!((state.probabilities()[0] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs a circuit, returning the final state (if collected) and the
    /// modeled execution report.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has zero qubits (unconstructible), has more
    /// qubits than fit in memory, or the run fails with a [`SimError`]
    /// (injected fatal faults, exhausted retries, checkpoint I/O). Use
    /// [`Simulator::try_run`] to handle failures as values.
    pub fn run(&self, circuit: &Circuit) -> RunResult {
        self.try_run(circuit).expect("simulation failed")
    }

    /// Runs a circuit, surfacing resilience failures as a [`SimError`]
    /// instead of panicking.
    ///
    /// Errors are only possible when fault injection or checkpointing is
    /// configured (or a worker thread genuinely panics); an unconfigured
    /// run never fails.
    pub fn try_run(&self, circuit: &Circuit) -> Result<RunResult, SimError> {
        self.try_run_from(circuit, None)
    }

    /// Runs a circuit, optionally resuming from a [`Checkpoint`] written
    /// by a previous (possibly fatally-interrupted) run.
    ///
    /// The checkpoint's `gates_done` counts *program ops* — the circuit,
    /// fusion and reorder settings must match the run that wrote it, or
    /// an [`SimError::Checkpoint`] is returned / the resumed state is
    /// meaningless. Timing restarts at zero for the resumed segment.
    pub fn try_run_from(
        &self,
        circuit: &Circuit,
        resume: Option<&Checkpoint>,
    ) -> Result<RunResult, SimError> {
        let recorder = self.config.obs_spans.then(|| Arc::new(Recorder::new()));
        let mut result = match self.config.version {
            Version::Baseline => baseline::run(circuit, &self.config, recorder.as_ref(), resume)?,
            _ => streaming::run(circuit, &self.config, recorder.as_ref(), resume)?,
        };
        if let Some(rec) = recorder {
            result.obs = Some(ObsData {
                spans: rec.spans(),
                metrics: rec.metrics(),
                wall_s: rec.elapsed_s(),
            });
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgpu_circuit::generators::Benchmark;
    use qgpu_statevec::StateVector;

    #[test]
    fn all_versions_produce_identical_states() {
        // The paper's correctness claim: pruning, reordering and
        // compression "do not affect the simulation results".
        for b in [Benchmark::Gs, Benchmark::Iqp, Benchmark::Qft] {
            let c = b.generate(9);
            let mut reference = StateVector::new_zero(9);
            reference.run(&c);
            for v in Version::ALL {
                let cfg = SimConfig::scaled_paper(9).with_version(v);
                let r = Simulator::new(cfg).run(&c);
                let state = r.state.expect("state collected");
                let dev = state.max_deviation(&reference);
                assert!(dev < 1e-10, "{b}/{v}: deviation {dev}");
            }
        }
    }

    #[test]
    fn recipe_improves_monotonically_in_the_large() {
        // On a pruning-friendly circuit the full recipe must beat the
        // naive version substantially and the baseline overall.
        let c = Benchmark::Iqp.generate(12);
        let time = |v: Version| {
            Simulator::new(SimConfig::scaled_paper(12).with_version(v).timing_only())
                .run(&c)
                .report
                .total_time
        };
        let baseline = time(Version::Baseline);
        let naive = time(Version::Naive);
        let overlap = time(Version::Overlap);
        let pruning = time(Version::Pruning);
        let qgpu = time(Version::QGpu);
        assert!(naive > overlap, "overlap must beat naive");
        assert!(overlap > pruning, "pruning must beat overlap on iqp");
        assert!(qgpu < baseline, "the full recipe must beat the baseline");
    }

    #[test]
    fn gate_fusion_is_bitwise_identical_to_per_gate_execution() {
        // Fused runs are replayed member-by-member, so enabling fusion
        // must not move a single bit of the functional state — in any
        // version.
        for b in [Benchmark::Qft, Benchmark::Iqp, Benchmark::Qaoa] {
            let c = b.generate(10);
            for v in Version::ALL {
                let plain = Simulator::new(SimConfig::scaled_paper(10).with_version(v)).run(&c);
                let fused = Simulator::new(
                    SimConfig::scaled_paper(10)
                        .with_version(v)
                        .with_gate_fusion(),
                )
                .run(&c);
                let pa = plain.state.expect("collected");
                let fa = fused.state.expect("collected");
                for i in 0..pa.len() {
                    let (x, y) = (pa.amp(i), fa.amp(i));
                    assert!(
                        x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                        "{b}/{v}: amplitude {i} differs under fusion"
                    );
                }
            }
        }
    }

    #[test]
    fn thread_count_is_bitwise_invisible() {
        let c = Benchmark::Rqc.generate(10);
        for v in [Version::Baseline, Version::QGpu] {
            let base = SimConfig::scaled_paper(10)
                .with_version(v)
                .with_gate_fusion();
            let one = Simulator::new(base.clone()).run(&c);
            let oa = one.state.expect("collected");
            for threads in [2, 4] {
                let many = Simulator::new(base.clone().with_threads(threads)).run(&c);
                let ma = many.state.expect("collected");
                for i in 0..oa.len() {
                    let (x, y) = (oa.amp(i), ma.amp(i));
                    assert!(
                        x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                        "{v}/threads {threads}: amplitude {i} differs"
                    );
                }
            }
        }
    }

    #[test]
    fn fusion_is_recorded_and_reduces_streaming_traffic() {
        // qft is a fusion-friendly circuit (long controlled-phase runs):
        // the report must show fused kernels, and Naive — which moves the
        // whole state per op — must move fewer bytes with fewer ops.
        let c = Benchmark::Qft.generate(10);
        let plain =
            Simulator::new(SimConfig::scaled_paper(10).with_version(Version::Naive)).run(&c);
        let fused = Simulator::new(
            SimConfig::scaled_paper(10)
                .with_version(Version::Naive)
                .with_gate_fusion(),
        )
        .run(&c);
        assert_eq!(plain.report.fused_kernels, 0);
        assert_eq!(plain.report.gates_fused, 0);
        assert!(fused.report.gates_fused > 0, "qft must fuse gates");
        assert!(
            fused.report.fused_kernels > 0,
            "fused kernels must be recorded"
        );
        assert!(
            fused.report.bytes_h2d < plain.report.bytes_h2d / 2,
            "fusion should at least halve naive qft uploads: {} vs {}",
            fused.report.bytes_h2d,
            plain.report.bytes_h2d
        );
        assert!(fused.report.total_time < plain.report.total_time);
    }

    #[test]
    fn obs_recording_captures_spans_and_agrees_with_the_report() {
        let c = Benchmark::Qft.generate(10);
        let cfg = SimConfig::scaled_paper(10)
            .with_version(Version::QGpu)
            .with_obs_spans();
        let r = Simulator::new(cfg).run(&c);
        let obs = r.obs.as_ref().expect("obs data collected");
        assert!(!obs.spans.is_empty());
        assert!(obs.wall_s > 0.0);
        // The measured counters must agree with the modeled report —
        // both now flow from the same engine loop.
        assert_eq!(
            obs.metrics.counter("chunks.processed"),
            Some(r.report.chunks_processed)
        );
        assert_eq!(
            obs.metrics.counter("chunks.pruned"),
            Some(r.report.chunks_pruned)
        );
        // A drift report builds and renders from the collected data.
        let drift = qgpu_obs::DriftReport::new(
            &r.report,
            &obs.spans,
            obs.wall_s,
            qgpu_obs::drift::DEFAULT_TOLERANCE_PP,
        );
        assert!(drift.render().contains("update"));
        // Without the flag the run carries no obs payload.
        let off = Simulator::new(SimConfig::scaled_paper(10).with_version(Version::QGpu)).run(&c);
        assert!(off.obs.is_none());
    }

    #[test]
    fn obs_recording_does_not_change_results() {
        let c = Benchmark::Iqp.generate(10);
        for v in [Version::Baseline, Version::QGpu] {
            let plain = Simulator::new(SimConfig::scaled_paper(10).with_version(v)).run(&c);
            let observed = Simulator::new(
                SimConfig::scaled_paper(10)
                    .with_version(v)
                    .with_obs_spans()
                    .with_threads(2),
            )
            .run(&c);
            assert_eq!(plain.report.total_time, observed.report.total_time);
            assert_eq!(plain.report.bytes_h2d, observed.report.bytes_h2d);
            let pa = plain.state.expect("collected");
            let oa = observed.state.expect("collected");
            for i in 0..pa.len() {
                let (x, y) = (pa.amp(i), oa.amp(i));
                assert!(x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits());
            }
        }
    }

    #[test]
    fn flops_estimates() {
        use qgpu_circuit::{Gate, Operation};
        let h = GateAction::from_operation(&Operation::new(Gate::H, vec![0]));
        assert_eq!(flops_per_amp(&h), 16.0);
        let z = GateAction::from_operation(&Operation::new(Gate::Z, vec![0]));
        assert_eq!(flops_per_amp(&z), 6.0);
    }
}
