//! The execution engine: functional simulation driven through the device
//! timing model.
//!
//! [`Simulator`] hands every run to the composable chunk-pipeline stage
//! graph in [`pipeline`]. A `PipelineSpec` — derived from the
//! configured [`crate::Version`] or an explicit [`crate::OptFlags`]
//! subset — selects:
//!
//! * the **static** mode (`pipeline::static_alloc`): static chunk
//!   allocation, CPU updates host chunks, reactive synchronous exchange
//!   (the paper's baseline);
//! * the **streaming** mode: chunks stream through the GPU(s) along the
//!   *Plan → Prune → Deal → Fetch → Decompress → Kernel → Compress →
//!   Writeback → Sync* stage list, with overlap / pruning / reordering /
//!   compression toggled by flags.
//!
//! Both modes walk the same program of [`qgpu_circuit::fuse::ProgramOp`]s
//! (one op per gate unless [`SimConfig::gate_fusion`] collapses runs;
//! measurements and resets are barrier steps), resolve each unitary op's
//! [`qgpu_sched::GatePlan`], apply the amplitudes for real on a
//! [`qgpu_statevec::ChunkedState`] through the
//! [`qgpu_statevec::ChunkExecutor`] worker pool, and charge each chunk
//! task to the [`qgpu_device::Timeline`]. Stochastic execution — seeded
//! noise rewriting, mid-circuit collapse, shot sampling — flows through
//! the keyed draws of [`qgpu_math::rng`] (see `pipeline::stochastic`).
//! The result is a bit-identical final state across versions, flag
//! subsets, thread counts and fusion settings, with version-specific
//! timing.

// The stage-graph refactor's guard rails: no engine function grows back
// into a monolith (thresholds in clippy.toml; CI runs -D warnings).
#![warn(clippy::too_many_lines, clippy::cognitive_complexity)]

pub mod pipeline;

use std::sync::Arc;

use qgpu_circuit::access::GateAction;
use qgpu_circuit::fuse::{self, ProgramOp};
use qgpu_circuit::Circuit;
use qgpu_faults::SimError;
use qgpu_obs::Recorder;

use crate::checkpoint::Checkpoint;
use crate::config::SimConfig;
use crate::result::{ObsData, RunResult};

#[cfg(test)]
mod tests;

/// Lowers a circuit to the engine's executable program: fused runs when
/// [`SimConfig::gate_fusion`] is on, a 1:1 lowering otherwise.
/// Measurements and resets become barrier [`ProgramOp`]s either way.
pub(crate) fn program_for(circuit: &Circuit, cfg: &SimConfig) -> Vec<ProgramOp> {
    if cfg.gate_fusion {
        fuse::fuse_program(circuit)
    } else {
        fuse::lower_program(circuit)
    }
}

/// Floating-point operations per amplitude for a gate action: a dense
/// matrix over `k` mixing qubits costs one `2^k`-point complex dot product
/// per amplitude; a diagonal action one complex multiply.
pub(crate) fn flops_per_amp(action: &GateAction) -> f64 {
    match action {
        GateAction::Diagonal { .. } => 6.0,
        GateAction::ControlledDense { matrix, .. } => matrix.dim() as f64 * 8.0,
    }
}

/// The Q-GPU simulator: runs circuits under a [`SimConfig`].
///
/// # Examples
///
/// ```
/// use qgpu::{SimConfig, Simulator, Version};
/// use qgpu_circuit::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let result = Simulator::new(SimConfig::scaled_paper(2).with_version(Version::Baseline))
///     .run(&bell);
/// let state = result.state.expect("collected");
/// assert!((state.probabilities()[0] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs a circuit, returning the final state (if collected) and the
    /// modeled execution report.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has zero qubits (unconstructible), has more
    /// qubits than fit in memory, or the run fails with a [`SimError`]
    /// (injected fatal faults, exhausted retries, checkpoint I/O). Use
    /// [`Simulator::try_run`] to handle failures as values.
    pub fn run(&self, circuit: &Circuit) -> RunResult {
        self.try_run(circuit).expect("simulation failed")
    }

    /// Runs a circuit, surfacing resilience failures as a [`SimError`]
    /// instead of panicking.
    ///
    /// Errors are only possible when fault injection or checkpointing is
    /// configured (or a worker thread genuinely panics); an unconfigured
    /// run never fails.
    pub fn try_run(&self, circuit: &Circuit) -> Result<RunResult, SimError> {
        self.try_run_from(circuit, None)
    }

    /// Runs a circuit, optionally resuming from a [`Checkpoint`] written
    /// by a previous (possibly fatally-interrupted) run.
    ///
    /// The checkpoint's `gates_done` counts *program ops* — the circuit,
    /// fusion and reorder settings must match the run that wrote it, or
    /// an [`SimError::Checkpoint`] is returned / the resumed state is
    /// meaningless. Timing restarts at zero for the resumed segment.
    pub fn try_run_from(
        &self,
        circuit: &Circuit,
        resume: Option<&Checkpoint>,
    ) -> Result<RunResult, SimError> {
        let recorder = self.make_recorder();
        let outcome = pipeline::run(circuit, &self.config, recorder.as_ref(), resume);
        let mut result = match outcome {
            Ok(result) => result,
            Err(err) => {
                if let Some(rec) = &recorder {
                    rec.flight("error", || err.to_string());
                    self.dump_flight(rec);
                }
                return Err(err);
            }
        };
        if let Some(rec) = recorder {
            self.dump_flight(&rec);
            if self.config.obs_spans {
                result.obs = Some(ObsData {
                    spans: rec.spans(),
                    metrics: rec.metrics(),
                    wall_s: rec.elapsed_s(),
                    registry: rec.registry().snapshot(),
                    flight: rec.flight_events(),
                    flight_triggered: rec.flight_triggered(),
                });
            }
        }
        Ok(result)
    }

    /// Builds the run's recorder: spans when `obs_spans` is on, a flight
    /// ring when `flight` is configured, nothing when neither is.
    fn make_recorder(&self) -> Option<Arc<Recorder>> {
        if !self.config.obs_spans && self.config.flight.is_none() {
            return None;
        }
        let mut rec = Recorder::new();
        if let Some(fc) = &self.config.flight {
            rec = rec.with_flight(fc.events);
        }
        if !self.config.obs_spans {
            rec = rec.without_spans();
        }
        Some(Arc::new(rec))
    }

    /// Dumps the flight-recorder ring to its configured JSON path when a
    /// trigger event fired (or unconditionally with `dump_always`).
    fn dump_flight(&self, rec: &Recorder) {
        let Some(fc) = &self.config.flight else {
            return;
        };
        if !(fc.dump_always || rec.flight_triggered()) {
            return;
        }
        let Some(json) = rec.flight_json() else {
            return;
        };
        let path = fc.dump_path();
        match std::fs::write(path, json.to_string()) {
            Ok(()) => eprintln!(
                "[qgpu] flight recorder dumped {} event(s) to {path}",
                rec.flight_events().len()
            ),
            Err(e) => eprintln!("[qgpu] flight recorder dump to {path} failed: {e}"),
        }
    }
}
