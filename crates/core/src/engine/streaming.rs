//! The streaming engines: Naive, Overlap, Pruning, Reorder, Q-GPU.
//!
//! All five share one loop: per gate, the [`GatePlan`]'s chunk tasks
//! stream through the GPU(s) as *H2D copy → (decompress) → kernel →
//! (compress) → D2H copy*. The version decides:
//!
//! * **Naive** — every step chains after the previous one (one CUDA
//!   stream, no overlap) and every gate ends with a synchronization;
//! * **Overlap** — the copy engines and compute pipeline freely, limited
//!   by a double-buffer window of half the GPU memory (paper §IV-A), and
//!   the pipeline flows *across* gates (proactive prefetch);
//! * **Pruning** — tasks whose chunks are provably zero under the
//!   involvement mask are skipped, and the chunk size adapts to the
//!   involvement (paper §IV-B, Algorithm 1);
//! * **Reorder** — the forward-looking pass (§IV-C) runs first;
//! * **Q-GPU** — non-zero chunks move in GFC-compressed form, paying
//!   (de)compression kernel time (§IV-D). Compressed sizes come from
//!   running the real codec on the real amplitudes.
//!
//! Multi-GPU platforms deal tasks round-robin across devices
//! (paper §V-E, Figure 18).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use qgpu_circuit::access::GateAction;
use qgpu_circuit::fuse::FusedOp;
use qgpu_circuit::Circuit;
use qgpu_compress::GfcCodec;
use qgpu_device::timeline::{Engine, TaskKind, Timeline};
use qgpu_device::ExecutionReport;
use qgpu_faults::{FaultInjector, FaultSite, RetryPolicy, SimError};
use qgpu_math::Complex64;
use qgpu_obs::{span_opt, Recorder, Stage, Track};
use qgpu_sched::devicegroup::{DeviceGroup, PressureAction, PressureGovernor};
use qgpu_sched::plan::{ChunkTask, GatePlan};
use qgpu_sched::residency::RoundRobin;
use qgpu_sched::InvolvementTracker;
use qgpu_statevec::{ChunkExecutor, ChunkedState};

use crate::checkpoint::Checkpoint;
use crate::config::SimConfig;
use crate::engine::flops_per_amp;
use crate::result::RunResult;

/// Longest run of chunk-local gates merged into one chunk visit by the
/// gate-batching extension (bounds involvement-staleness of the pruning
/// decision, which is evaluated once per batch).
const MAX_BATCH: usize = 64;

/// Per-GPU double-buffer window: chunks in flight on the device.
#[derive(Default)]
struct Window {
    slots: VecDeque<(f64, usize)>, // (d2h end, chunks held)
    inflight: usize,
}

/// Schedules a CPU↔GPU copy: the transfer holds its per-GPU link engine
/// for `bytes/link_bw` *and* reserves the shared host-DRAM DMA path for
/// `bytes/copy_bw`, so aggregate traffic across all GPUs never exceeds
/// what host memory can stage (the paper's §V-E observation that CPU↔GPU
/// movement, not GPU↔GPU links, bounds multi-GPU scaling).
#[allow(clippy::too_many_arguments)]
pub(crate) fn copy_with_dma(
    tl: &mut Timeline,
    dma_engine: Engine,
    link_engine: Engine,
    kind: TaskKind,
    ready: f64,
    bytes: u64,
    link: &qgpu_device::LinkSpec,
    copy_bw: f64,
    link_stretch: f64,
) -> qgpu_device::Span {
    let dma = tl.schedule(
        dma_engine,
        ready,
        bytes as f64 / copy_bw,
        TaskKind::HostDma,
        0,
    );
    tl.schedule(
        link_engine,
        dma.start,
        link.transfer_time(bytes) * link_stretch,
        kind,
        bytes,
    )
}

/// Per-chunk compressed size recorded as "the codec failed, move raw"
/// (see the codec-failure degradation path).
const RAW_FALLBACK: usize = usize::MAX;

/// Upper bound on `chunk_bits`, sizing the flat all-zero-tag cache.
const MAX_CHUNK_BITS: usize = 64;

/// A chunk's amplitudes as raw bytes, for checksumming.
fn amp_bytes(amps: &[Complex64]) -> &[u8] {
    // SAFETY: `Complex64` is two `f64`s with no padding; an initialized
    // amplitude slice is readable as plain bytes.
    unsafe { std::slice::from_raw_parts(amps.as_ptr().cast::<u8>(), std::mem::size_of_val(amps)) }
}

/// The resilient pipeline's working state: the seeded injector, the retry
/// policy, deterministic occurrence counters for each fault site (the
/// engine loop issues them serially, so a given seed replays identically),
/// and the per-chunk integrity tags.
///
/// Tag storage is flat-indexed, not hashed: a qft_20 run visits tens of
/// millions of (chunk, transfer) pairs, and at that volume per-visit
/// `HashMap` traffic alone blows the `fault_overhead` budget.
struct Resilience {
    inj: FaultInjector,
    retry: RetryPolicy,
    transfers: u64,
    codec_ops: u64,
    kernels: u64,
    /// Arrival-side CRC passes actually paid (each one is a real
    /// checksum over a chunk that moved raw). Compressed chunks are
    /// sealed at encode time and must never show up here — the
    /// `integrity.retags` counter makes that invariant observable.
    retags: u64,
    /// Last tag computed for each chunk (indexed by chunk number),
    /// refreshed on every arrival.
    tags: Vec<Option<u32>>,
    /// Tag of an all-zero chunk, indexed by chunk size — it never changes.
    zero_tag: [Option<u32>; MAX_CHUNK_BITS],
}

impl Resilience {
    fn new(cfg: &SimConfig) -> Self {
        Resilience {
            inj: FaultInjector::new(cfg.faults),
            retry: cfg.retry,
            transfers: 0,
            codec_ops: 0,
            kernels: 0,
            retags: 0,
            tags: Vec::new(),
            zero_tag: [None; MAX_CHUNK_BITS],
        }
    }

    /// Tag of an all-zero chunk of `chunk_bits` — computed once per size,
    /// then a flat array read.
    fn zero_tag(&mut self, chunk_bits: u32) -> u32 {
        *self.zero_tag[chunk_bits as usize].get_or_insert_with(|| {
            let zeros = vec![0u8; 16usize << chunk_bits];
            qgpu_faults::fast_checksum(&zeros)
        })
    }

    /// Grows the tag table to cover chunk indices in `members`.
    fn reserve_tags(&mut self, members: &[usize]) {
        let max = members.iter().copied().max().map_or(0, |m| m + 1);
        if max > self.tags.len() {
            self.tags.resize(max, None);
        }
    }

    /// Encode-time sealing: the GFC encoder computes the chunk's tag in
    /// the same pass that sizes the compressed stream — the amplitudes
    /// are cache-hot from the codec walk, so the checksum is nearly free
    /// (the same fusion zstd uses for its content checksum). The tag
    /// then travels with the compressed chunk; no separate arrival pass
    /// is needed.
    fn seal_at_encode(&mut self, m: usize, amps: &[Complex64]) {
        if m >= self.tags.len() {
            self.tags.resize(m + 1, None);
        }
        self.tags[m] = Some(qgpu_faults::fast_checksum(amp_bytes(amps)));
    }

    /// Encode-time sealing of an all-zero chunk (cached per chunk size).
    fn seal_zero_at_encode(&mut self, m: usize, chunk_bits: u32) {
        if m >= self.tags.len() {
            self.tags.resize(m + 1, None);
        }
        let zero = self.zero_tag(chunk_bits);
        self.tags[m] = Some(zero);
    }

    /// Upload-side integrity: a departing chunk carries the tag computed
    /// when it last arrived at the host — checksums travel with the data,
    /// and in the machine being modeled host chunk buffers are written
    /// only by D2H arrivals, so the arrival tag is still valid at the next
    /// upload. Chunks never tagged before are sealed now (one real CRC
    /// pass, mostly the cached all-zero tag early in a run). Members for
    /// which `skip` returns true are pruned from the transfer and don't
    /// move.
    fn seal_for_upload(
        &mut self,
        state: &ChunkedState,
        members: &[usize],
        chunk_bits: u32,
        skip: impl Fn(usize) -> bool,
    ) {
        self.reserve_tags(members);
        let zero = self.zero_tag(chunk_bits);
        for &m in members {
            if skip(m) || self.tags[m].is_some() {
                continue;
            }
            self.tags[m] = Some(match state.chunk(m) {
                Some(amps) => qgpu_faults::fast_checksum(amp_bytes(amps)),
                None => zero,
            });
        }
    }

    /// Arrival-side integrity for chunks that move *without* an encode
    /// pass (uncompressed versions, and raw codec-failure fallbacks):
    /// re-tag each chunk that just crossed the link — one real CRC pass
    /// per round trip, the honest cost the `fault_overhead` bench
    /// bounds. Compressed chunks skip this: their tag was sealed at
    /// encode time and travels with the data. Either way the functional
    /// bytes cannot actually rot in memory, so a *mismatch* is the
    /// injector's decision, made inside [`transfer_with_integrity`]'s
    /// retry loop. Members for which `skip` returns true didn't move.
    fn verify_on_arrival(
        &mut self,
        state: &ChunkedState,
        members: &[usize],
        chunk_bits: u32,
        skip: impl Fn(usize) -> bool,
    ) {
        self.reserve_tags(members);
        let zero = self.zero_tag(chunk_bits);
        for &m in members {
            if skip(m) {
                continue;
            }
            self.retags += 1;
            self.tags[m] = Some(match state.chunk(m) {
                Some(amps) => qgpu_faults::fast_checksum(amp_bytes(amps)),
                None => zero,
            });
        }
    }

    /// Chunk-size re-partitioning renumbers chunks: every cached tag is
    /// stale and must be dropped.
    fn on_repartition(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = None);
    }

    /// Whether this op's involvement mask reads back corrupted — the
    /// pruning decision is then untrustworthy and the gate falls back to
    /// full-chunk execution.
    fn mask_corrupt(&self, op: usize) -> bool {
        self.inj.fires(FaultSite::MaskCorrupt, op as u64)
    }

    /// Whether the GFC encoder fails on this chunk occurrence (the
    /// pipeline then moves the chunk raw).
    fn codec_fails(&mut self) -> bool {
        let i = self.codec_ops;
        self.codec_ops += 1;
        self.inj.fires(FaultSite::CodecFail, i)
    }

    /// Modeled-time multiplier for the next kernel (1.0 unless a stage
    /// slowdown fires).
    fn kernel_stretch(&mut self) -> f64 {
        let i = self.kernels;
        self.kernels += 1;
        self.inj.slowdown(i)
    }
}

/// [`copy_with_dma`] under integrity checking: after each modeled
/// transfer the injector decides whether the arrival CRC matched. A
/// mismatch costs a [`TaskKind::Backoff`] span on the link engine and a
/// full retransmit; after `max_retries` consumed attempts the transfer is
/// abandoned with [`SimError::ChunkCorrupt`]. With `resil == None` this
/// is exactly `copy_with_dma`.
#[allow(clippy::too_many_arguments)]
fn transfer_with_integrity(
    tl: &mut Timeline,
    dma_engine: Engine,
    link_engine: Engine,
    kind: TaskKind,
    mut ready: f64,
    bytes: u64,
    link: &qgpu_device::LinkSpec,
    copy_bw: f64,
    resil: Option<&mut Resilience>,
    rec: Option<&Recorder>,
) -> Result<qgpu_device::Span, SimError> {
    let Some(rs) = resil else {
        return Ok(copy_with_dma(
            tl,
            dma_engine,
            link_engine,
            kind,
            ready,
            bytes,
            link,
            copy_bw,
            1.0,
        ));
    };
    let index = rs.transfers;
    rs.transfers += 1;
    // An injected link degradation stretches this transfer's link time —
    // every retry of the same transfer sees the same degraded link.
    let stretch = rs.inj.link_stretch(index);
    if stretch > 1.0 {
        tl.count_link_degradation();
        if let Some(r) = rec {
            r.add("link.degradations", 1);
        }
    }
    let mut attempt: u32 = 0;
    loop {
        let span = copy_with_dma(
            tl,
            dma_engine,
            link_engine,
            kind,
            ready,
            bytes,
            link,
            copy_bw,
            stretch,
        );
        if !rs
            .inj
            .fires_attempt(FaultSite::TransferCorrupt, index, attempt)
        {
            return Ok(span);
        }
        if attempt >= rs.retry.max_retries {
            return Err(SimError::ChunkCorrupt {
                chunk: index as usize,
                attempts: attempt + 1,
            });
        }
        // Arrival CRC mismatched: back off (modeled), then retransmit.
        let b = tl.schedule(
            link_engine,
            span.end,
            rs.retry.backoff_s(attempt),
            TaskKind::Backoff,
            0,
        );
        tl.count_chunk_retry();
        if let Some(r) = rec {
            r.add("chunk.retries", 1);
        }
        ready = b.end;
        attempt += 1;
    }
}

/// Engine-side orchestration state: the device group that deals tasks,
/// the optional memory-pressure governor, and the degradation latches the
/// governor has pulled so far.
struct Orchestration {
    group: DeviceGroup,
    governor: Option<PressureGovernor>,
    /// ForceCompress rung pulled: chunks move compressed even on
    /// versions below Q-GPU (modeled cost only; functional state is
    /// untouched, so results stay bit-identical).
    force_compress: bool,
    /// ShrinkChunks rung pulled: a ceiling on `chunk_bits`.
    bits_cap: Option<u32>,
    /// Program-op index at which the next checkpoint barrier closes.
    next_barrier: u64,
    /// Barriers closed so far (the probabilistic loss draw's index).
    barriers: u64,
    /// The deterministic `device_lost_at` injection already fired.
    loss_fired: bool,
}

impl Orchestration {
    /// The window cap under the per-device residency budget. The cap
    /// clamps immediately — admission never exceeds the budget — while
    /// the governor's ladder escalates only after sustained pressure
    /// ([`PressureGovernor::on_pressure`]'s strike counter), pulling
    /// ShrinkChunks → ForceCompress → SpillOldest in order.
    #[allow(clippy::too_many_arguments)]
    fn governed_cap(
        &mut self,
        base_cap: usize,
        inflight: usize,
        incoming: usize,
        chunk_bits: u32,
        chunk_bytes: u64,
        compressing: bool,
        tl: &mut Timeline,
        rec: Option<&Recorder>,
    ) -> usize {
        let Some(gov) = self.governor.as_mut() else {
            return base_cap;
        };
        let fit = gov.cap_chunks(chunk_bytes, 0);
        if fit < inflight + incoming {
            let can_shrink = chunk_bits > 1 && self.bits_cap.is_none();
            let can_compress = !compressing;
            if let Some(action) = gov.on_pressure(can_shrink, can_compress) {
                match action {
                    PressureAction::ShrinkChunks => {
                        self.bits_cap = Some(chunk_bits.saturating_sub(1).max(1));
                    }
                    PressureAction::ForceCompress => self.force_compress = true,
                    // The clamped cap already forces the admission loop
                    // to retire (spill) the oldest in-flight slots; the
                    // terminal rung just keeps doing that.
                    PressureAction::SpillOldest => {}
                }
                tl.count_pressure_downshift();
                if let Some(r) = rec {
                    r.add("orch.pressure_downshifts", 1);
                }
            }
        } else {
            gov.on_relief();
        }
        gov.cap_chunks(chunk_bytes, incoming.max(1)).min(base_cap)
    }
}

/// A device dropped out: re-shard onto the survivors and replay its
/// since-barrier log. Host state is authoritative (the functional update
/// already ran there), so recovery is purely modeled time — each migrated
/// task re-uploads its bytes and re-runs its kernel on the survivor the
/// post-loss epoch rotation deals it to — and the recovered result is
/// bit-identical to an undisturbed run.
#[allow(clippy::too_many_arguments)]
fn handle_device_loss(
    device: usize,
    o: &mut Orchestration,
    tl: &mut Timeline,
    windows: &mut [Window],
    epoch_floor: &mut f64,
    chain: &mut f64,
    cfg: &SimConfig,
    rec: Option<&Recorder>,
) -> Result<(), SimError> {
    if !o.group.is_alive(device) {
        return Ok(());
    }
    let Some(replay) = o.group.lose_device(device) else {
        return Err(SimError::AllDevicesLost { device });
    };
    let _g = span_opt(rec, Track::Main, Stage::Other, "orch.reshard");
    tl.count_device_lost();
    tl.count_chunks_migrated(replay.len() as u64);
    if let Some(r) = rec {
        r.add("orch.devices_lost", 1);
        r.add("orch.chunks_migrated", replay.len() as u64);
    }
    // The dead device's double-buffer window died with it.
    windows[device].slots.clear();
    windows[device].inflight = 0;
    let floor = tl.makespan();
    let mut done = floor;
    for (i, t) in replay.iter().enumerate() {
        let g = o.group.owner_of(i);
        let h2d = copy_with_dma(
            tl,
            Engine::HostDmaOut,
            Engine::H2d(g),
            TaskKind::H2dCopy,
            floor,
            t.bytes,
            cfg.platform.link(g),
            cfg.platform.host.copy_bw,
            1.0,
        );
        let k = tl.schedule(
            Engine::GpuCompute(g),
            h2d.end,
            t.duration,
            TaskKind::Kernel,
            t.bytes,
        );
        done = done.max(k.end);
    }
    // Recovery is a synchronization point: the pipeline restarts from the
    // re-shard horizon.
    *epoch_floor = done.max(*epoch_floor);
    *chain = chain.max(*epoch_floor);
    Ok(())
}

pub(crate) fn run(
    circuit: &Circuit,
    cfg: &SimConfig,
    recorder: Option<&Arc<Recorder>>,
    resume: Option<&Checkpoint>,
) -> Result<RunResult, SimError> {
    let rec = recorder.map(Arc::as_ref);
    let version = cfg.version;
    let circuit_owned;
    let circuit = if version.has_reorder() {
        circuit_owned = cfg.reorder_strategy.reorder_observed(circuit, rec);
        &circuit_owned
    } else {
        circuit
    };

    let n = circuit.num_qubits();
    let base_chunk_bits = cfg.chunk_bits_for(n);
    let num_gpus = cfg.platform.num_gpus();
    let rr = RoundRobin::new(num_gpus);
    // One GFC segment per warp, but never so many that a segment degrades
    // to a single (history-less) micro-chunk: keep ≥ 8 micro-chunks of 32
    // doubles per segment. (The paper: "we empirically choose the number
    // of segments to match the GPU parallelism".)
    let codec_for = |chunk_bits: u32| {
        let doubles = 2usize << chunk_bits;
        GfcCodec::new((doubles / 256).clamp(1, cfg.compress_segments))
    };

    // Fixed per-task cost in byte-equivalents at link speed: a round trip
    // pays two transfer latencies and one kernel launch.
    let overhead_bytes = (2.0 * cfg.platform.link(0).latency + cfg.platform.gpu(0).kernel_launch)
        * cfg.platform.link(0).bw_per_direction;

    // The executable program: fused runs (after any reorder) or a 1:1
    // lowering. Timing and chunk plans come from each op's collapsed
    // kernel; the functional update replays the member gates exactly.
    let program = {
        let _g = span_opt(rec, Track::Main, Stage::Plan, "engine.program");
        crate::engine::program_for(circuit, cfg)
    };

    // Resume: pick up at the checkpoint's op index. The checkpoint must
    // come from a run with the same circuit and config — `gates_done`
    // counts *program* ops, which depend on fusion and reorder settings.
    let start = match resume {
        Some(ck) => {
            if ck.state.num_qubits() != n {
                return Err(SimError::Checkpoint(format!(
                    "checkpoint has {} qubits, circuit has {n}",
                    ck.state.num_qubits()
                )));
            }
            if ck.gates_done as usize > program.len() {
                return Err(SimError::Checkpoint(format!(
                    "checkpoint is {} ops in, program has only {}",
                    ck.gates_done,
                    program.len()
                )));
            }
            ck.gates_done as usize
        }
        None => 0,
    };

    // Involvement replays instantly for the skipped prefix: masks are
    // pure functions of the program, no amplitudes needed.
    let mut tracker = InvolvementTracker::new(n);
    for f in &program[..start] {
        tracker.involve_mask(f.qubit_mask());
    }

    let dynamic_chunks = version.has_pruning() && cfg.dynamic_chunk_size;
    let mut chunk_bits = if dynamic_chunks {
        tracker.optimal_chunk_bits(base_chunk_bits, overhead_bytes)
    } else {
        base_chunk_bits
    };
    let mut codec = codec_for(chunk_bits);
    let mut state = match resume {
        Some(ck) => ChunkedState::from_flat(&ck.state, chunk_bits),
        None => ChunkedState::new_zero(n, chunk_bits),
    };
    let mut tl = if cfg.trace_events > 0 {
        Timeline::with_trace(cfg.trace_events)
    } else {
        Timeline::new()
    };

    let mut resil = cfg.resilience_active().then(|| Resilience::new(cfg));
    let mut last_ckpt = start as u64;

    // Resilient multi-device orchestration: explicit opt-in, or implied
    // by any configured device-level fault.
    let mut orch = cfg.effective_orchestration().map(|ocfg| Orchestration {
        group: {
            let mut g = DeviceGroup::new(num_gpus, ocfg);
            // Replay logs only serve device loss; without device faults
            // their per-task pushes are the orchestrator's single
            // biggest fault-free cost.
            g.set_replay_tracking(cfg.faults.device_faults_enabled());
            g
        },
        governor: ocfg.mem_budget_bytes.map(PressureGovernor::new),
        force_compress: false,
        bits_cap: None,
        next_barrier: start as u64 + ocfg.barrier_interval,
        barriers: 0,
        loss_fired: false,
    });
    // Per-device modeled compute backlog, refilled at each assignment.
    let mut backlog: Vec<f64> = vec![0.0; num_gpus];

    // Compressed representation held by the CPU, per chunk (bytes).
    let mut compressed: HashMap<usize, usize> = HashMap::new();
    // Pipeline state.
    let mut last_d2h: HashMap<usize, f64> = HashMap::new();
    let mut windows: Vec<Window> = (0..num_gpus).map(|_| Window::default()).collect();
    let mut epoch_floor = 0.0f64;
    let mut chain = 0.0f64; // Naive's single-stream chain.
    let mut task_counter = 0usize;

    // Compressed size of an all-zero chunk, per chunk_bits (cached).
    let mut zero_chunk_size: HashMap<u32, usize> = HashMap::new();

    // A worker-death campaign honors the configured thread count exactly
    // (no clamping to the host's cores): the multi-worker partitioning
    // paths under test must run even on small machines, and the recovered
    // result is bitwise identical at every thread count.
    let mut executor = if cfg.faults.p_worker_death > 0.0 {
        ChunkExecutor::with_exact_threads(cfg.threads)
            .with_faults(Arc::new(FaultInjector::new(cfg.faults)))
    } else {
        ChunkExecutor::new(cfg.threads)
    };
    if let Some(arc) = recorder {
        executor = executor.with_recorder(Arc::clone(arc));
    }
    tl.set_gates_fused(qgpu_circuit::fuse::gates_fused(&program) as u64);

    let mut idx = start;
    while idx < program.len() {
        // Periodic checkpoint, then the injected fatal fault — in that
        // order, so a run killed at op `k` resumes from the newest
        // checkpoint at or before `k`.
        if cfg.checkpoint_every > 0 && idx as u64 >= last_ckpt + cfg.checkpoint_every {
            if let Some(path) = &cfg.checkpoint_path {
                crate::checkpoint::save_with_progress(&state.to_flat(), idx as u64, path)
                    .map_err(|e| SimError::Checkpoint(e.to_string()))?;
                last_ckpt = idx as u64;
                if let Some(r) = rec {
                    r.add("checkpoints.written", 1);
                }
            }
        }
        if idx >= cfg.faults.fail_at_gate {
            return Err(SimError::Fatal {
                gate: idx,
                reason: "injected fatal fault".to_string(),
            });
        }

        // ---- orchestration: barriers and device loss -----------------
        if let Some(o) = orch.as_mut() {
            // Deterministic one-shot loss at a configured op index. The
            // `>=` (with a latch) tolerates the exact index having been
            // consumed mid-batch by the gate-batching extension.
            let mut lost: Option<usize> = None;
            if !o.loss_fired && idx >= cfg.faults.device_lost_at {
                o.loss_fired = true;
                if cfg.faults.device_lost_id < num_gpus {
                    lost = Some(cfg.faults.device_lost_id);
                }
            }
            // Checkpoint barrier: replay logs truncate here, and the
            // probabilistic loss draws once per (device, barrier).
            if idx as u64 >= o.next_barrier {
                o.group.barrier();
                o.barriers += 1;
                o.next_barrier = idx as u64 + o.group.config().barrier_interval;
                if let (None, Some(rs)) = (lost, resil.as_ref()) {
                    lost = (0..num_gpus)
                        .find(|&d| o.group.is_alive(d) && rs.inj.device_lost_fires(d, o.barriers));
                }
            }
            if let Some(d) = lost {
                handle_device_loss(
                    d,
                    o,
                    &mut tl,
                    &mut windows,
                    &mut epoch_floor,
                    &mut chain,
                    cfg,
                    rec,
                )?;
            }
        }

        // Dynamic chunk sizing (Algorithm 1's getChunkSize), with the
        // governor's ShrinkChunks ceiling applied on top.
        {
            let mut nb = if dynamic_chunks {
                tracker.optimal_chunk_bits(base_chunk_bits, overhead_bytes)
            } else {
                base_chunk_bits
            };
            if let Some(cap) = orch.as_ref().and_then(|o| o.bits_cap) {
                nb = nb.min(cap);
            }
            if nb != chunk_bits {
                chunk_bits = nb;
                state.set_chunk_bits(nb);
                codec = codec_for(nb);
                // Re-partitioning is a synchronization point: the pipeline
                // drains and chunk-indexed caches reset.
                epoch_floor = tl.makespan();
                chain = chain.max(epoch_floor);
                last_d2h.clear();
                compressed.clear();
                if let Some(rs) = resil.as_mut() {
                    rs.on_repartition();
                }
                for w in &mut windows {
                    w.slots.clear();
                    w.inflight = 0;
                }
            }
        }

        let num_chunks = 1usize << (n as u32 - chunk_bits);
        let chunk_bytes = 16u64 << chunk_bits;
        // Whether chunks move compressed this op: the version's own
        // choice, or the governor's ForceCompress rung.
        let compressing =
            version.has_compression() || orch.as_ref().is_some_and(|o| o.force_compress);
        let fop = &program[idx];
        let action = fop.collapsed();

        // ---- gate-batching extension ---------------------------------
        // A run of chunk-local ops shares a single chunk round trip.
        let is_local = |a: &GateAction| a.mixing_qubits().iter().all(|&q| (q as u32) < chunk_bits);
        if cfg.batch_local_gates && is_local(action) {
            // A corrupted involvement mask (decided once per batch — the
            // pruning decision is evaluated once per batch) means no chunk
            // is provably zero: fall back to full-chunk execution.
            let prune_ok = match &resil {
                Some(rs) if version.has_pruning() && rs.mask_corrupt(idx) => {
                    tl.count_prune_fallback();
                    if let Some(r) = rec {
                        r.add("prune.fallbacks", 1);
                    }
                    false
                }
                _ => true,
            };
            let pruning = version.has_pruning() && prune_ok;
            let mut batch: Vec<&FusedOp> = vec![fop];
            idx += 1;
            while idx < program.len() && batch.len() < MAX_BATCH {
                let next = &program[idx];
                if !is_local(next.collapsed()) {
                    break;
                }
                batch.push(next);
                idx += 1;
            }
            // Involvement after the whole batch decides what moves back;
            // a chunk provably zero *before* the batch stays zero through
            // it (local gates cannot move amplitude across chunks).
            let mut tracker_end = tracker;
            for f in &batch {
                tracker_end.involve_mask(f.qubit_mask());
            }
            // Chunk-index bits each op requires set (high controls).
            let control_masks: Vec<usize> = batch
                .iter()
                .map(|f| {
                    f.collapsed()
                        .control_qubits()
                        .iter()
                        .filter(|&&c| (c as u32) >= chunk_bits)
                        .map(|&c| 1usize << (c as u32 - chunk_bits))
                        .sum()
                })
                .collect();

            for chunk in 0..num_chunks {
                if pruning && tracker.chunk_is_zero(chunk, chunk_bits) {
                    tl.count_pruned(batch.len() as u64);
                    if let Some(r) = rec {
                        r.add("chunks.pruned", batch.len() as u64);
                    }
                    continue;
                }
                let applicable: Vec<usize> = (0..batch.len())
                    .filter(|&i| chunk & control_masks[i] == control_masks[i])
                    .collect();
                if applicable.is_empty() {
                    continue;
                }
                let gpu = match orch.as_mut() {
                    Some(o) => {
                        // Backlogs only matter for victim selection, so a
                        // healthy (un-armed) fleet skips gathering them.
                        if o.group.steal_armed() {
                            for (g, b) in backlog.iter_mut().enumerate() {
                                *b = tl.engine_available(Engine::GpuCompute(g));
                            }
                        }
                        let (g, stolen) = o.group.assign(task_counter, &backlog);
                        if stolen {
                            tl.count_steal();
                            if let Some(r) = rec {
                                r.add("orch.steals", 1);
                            }
                        }
                        g
                    }
                    None => rr.gpu_for_task(task_counter),
                };
                task_counter += 1;
                let link = cfg.platform.link(gpu);
                let gspec = cfg.platform.gpu(gpu);

                // Upload once.
                let (h2d_bytes, raw_up_compressed) = match (compressing, compressed.get(&chunk)) {
                    (true, Some(&sz)) => (sz as u64, chunk_bytes),
                    _ => (chunk_bytes, 0),
                };
                let mut ready = epoch_floor;
                if let Some(&t) = last_d2h.get(&chunk) {
                    ready = ready.max(t);
                }
                if version.has_overlap() {
                    let base_cap = ((gspec.mem_bytes as f64 * cfg.buffer_split) as u64
                        / chunk_bytes)
                        .max(1) as usize;
                    let inflight = windows[gpu].inflight;
                    let cap = match orch.as_mut() {
                        Some(o) => o.governed_cap(
                            base_cap,
                            inflight,
                            1,
                            chunk_bits,
                            chunk_bytes,
                            compressing,
                            &mut tl,
                            rec,
                        ),
                        None => base_cap,
                    };
                    let w = &mut windows[gpu];
                    while w.inflight + 1 > cap {
                        match w.slots.pop_front() {
                            Some((end, held)) => {
                                ready = ready.max(end);
                                w.inflight -= held;
                            }
                            None => break,
                        }
                    }
                    if orch.as_ref().is_some_and(|o| o.governor.is_some()) {
                        tl.observe_resident_bytes((w.inflight + 1) as u64 * chunk_bytes);
                    }
                } else {
                    ready = ready.max(chain);
                    if let Some(o) = orch.as_mut() {
                        o.governed_cap(1, 0, 1, chunk_bits, chunk_bytes, compressing, &mut tl, rec);
                        if o.governor.is_some() {
                            tl.observe_resident_bytes(chunk_bytes);
                        }
                    }
                }
                if let Some(rs) = resil.as_mut() {
                    rs.seal_for_upload(&state, &[chunk], chunk_bits, |_| false);
                }
                let h2d = transfer_with_integrity(
                    &mut tl,
                    Engine::HostDmaOut,
                    Engine::H2d(gpu),
                    TaskKind::H2dCopy,
                    ready,
                    h2d_bytes,
                    link,
                    cfg.platform.host.copy_bw,
                    resil.as_mut(),
                    rec,
                )?;
                let mut compute_ready = h2d.end;
                if raw_up_compressed > 0 {
                    let d = tl.schedule(
                        Engine::GpuCompute(gpu),
                        compute_ready,
                        raw_up_compressed as f64 / gspec.compress_bw(),
                        TaskKind::Decompress,
                        raw_up_compressed,
                    );
                    compute_ready = d.end;
                }
                // One kernel per applicable op over the resident chunk.
                let mut kernel_service = 0.0f64;
                {
                    let _g = span_opt(rec, Track::Main, Stage::Update, "update.batch");
                    for &i in &applicable {
                        let stretch = resil.as_mut().map_or(1.0, |rs| {
                            rs.kernel_stretch() * rs.inj.straggler_stretch(gpu)
                        });
                        let kernel_s = (chunk_bytes as f64 / gspec.update_bw()
                            + gspec.kernel_launch)
                            * stretch;
                        let kernel = tl.schedule(
                            Engine::GpuCompute(gpu),
                            compute_ready,
                            kernel_s,
                            TaskKind::Kernel,
                            chunk_bytes,
                        );
                        kernel_service += kernel_s;
                        compute_ready = kernel.end;
                        tl.add_flops(
                            (chunk_bytes as f64 / 16.0) * flops_per_amp(batch[i].collapsed()),
                        );
                        if batch[i].is_fused() {
                            tl.count_fused_kernel();
                        }
                        let restarts = executor.try_apply_local_run(
                            &mut state,
                            batch[i].actions(),
                            &[chunk],
                        )?;
                        if restarts > 0 {
                            tl.count_worker_restarts(restarts);
                            if let Some(r) = rec {
                                r.add("worker.restarts", restarts);
                            }
                        }
                    }
                }
                tl.count_processed(applicable.len() as u64);
                if let Some(r) = rec {
                    r.add("chunks.processed", applicable.len() as u64);
                    r.observe("chunk.bytes", chunk_bytes);
                }
                if let Some(o) = orch.as_mut() {
                    // Pure kernel service time: queueing and codec spans
                    // would let backlog leak into the pace estimate.
                    o.group.record_task(gpu, kernel_service, chunk_bytes);
                }

                // Download once.
                let mut d2h_ready = compute_ready;
                let mut d2h_bytes = 0u64;
                let mut sealed_at_encode = false;
                if pruning && tracker_end.chunk_is_zero(chunk, chunk_bits) {
                    compressed.remove(&chunk);
                } else if compressing {
                    // Injected encode failure: degrade to a raw transfer
                    // for this chunk (no compress kernel, full bytes).
                    if resil.as_mut().is_some_and(Resilience::codec_fails) {
                        tl.count_codec_fallback();
                        if let Some(r) = rec {
                            r.add("codec.fallbacks", 1);
                        }
                        compressed.remove(&chunk);
                        d2h_bytes = chunk_bytes;
                    } else {
                        let _g = span_opt(rec, Track::Main, Stage::Compress, "gfc.compress");
                        let sz = match state.chunk(chunk) {
                            Some(amps) => {
                                if let Some(rs) = resil.as_mut() {
                                    rs.seal_at_encode(chunk, amps);
                                }
                                compressed_size(&codec, amps, chunk_bytes as usize, rec)
                            }
                            None => {
                                if let Some(rs) = resil.as_mut() {
                                    rs.seal_zero_at_encode(chunk, chunk_bits);
                                }
                                *zero_chunk_size.entry(chunk_bits).or_insert_with(|| {
                                    let zeros = vec![Complex64::ZERO; 1 << chunk_bits];
                                    compressed_size(&codec, &zeros, chunk_bytes as usize, rec)
                                })
                            }
                        };
                        sealed_at_encode = true;
                        tl.record_compression(chunk_bytes, sz as u64);
                        compressed.insert(chunk, sz);
                        d2h_bytes = sz as u64;
                        let cspan = tl.schedule(
                            Engine::GpuCompute(gpu),
                            d2h_ready,
                            chunk_bytes as f64 / gspec.compress_bw(),
                            TaskKind::Compress,
                            chunk_bytes,
                        );
                        d2h_ready = cspan.end;
                    }
                } else {
                    d2h_bytes = chunk_bytes;
                }
                // Only a chunk that actually crossed the link raw pays an
                // arrival re-tag; encode-sealed chunks carried their tag
                // and a pruned-to-zero chunk never moved at all.
                if let Some(rs) = resil.as_mut() {
                    if !sealed_at_encode && d2h_bytes > 0 {
                        rs.verify_on_arrival(&state, &[chunk], chunk_bits, |_| false);
                    }
                }
                let d2h = transfer_with_integrity(
                    &mut tl,
                    Engine::HostDmaIn,
                    Engine::D2h(gpu),
                    TaskKind::D2hCopy,
                    d2h_ready,
                    d2h_bytes,
                    link,
                    cfg.platform.host.copy_bw,
                    resil.as_mut(),
                    rec,
                )?;
                last_d2h.insert(chunk, d2h.end);
                if version.has_overlap() {
                    windows[gpu].slots.push_back((d2h.end, 1));
                    windows[gpu].inflight += 1;
                } else {
                    chain = d2h.end;
                }
            }
            if !version.has_overlap() {
                let s = tl.schedule(
                    Engine::Host,
                    chain,
                    cfg.platform.host.sync_latency,
                    TaskKind::Sync,
                    0,
                );
                chain = s.end;
            }
            tracker = tracker_end;
            continue;
        }
        idx += 1;

        let plan = GatePlan::new_observed(action, chunk_bits, num_chunks, rec);
        let fpa = flops_per_amp(action);

        // Involvement after this op: decides which members move back.
        let mut tracker_after = tracker;
        tracker_after.involve_mask(fop.qubit_mask());

        // A corrupted involvement mask (decided once per op) means no chunk
        // is provably zero: fall back to full-chunk execution for this op.
        let prune_ok = match &resil {
            Some(rs) if version.has_pruning() && rs.mask_corrupt(idx) => {
                tl.count_prune_fallback();
                if let Some(r) = rec {
                    r.add("prune.fallbacks", 1);
                }
                false
            }
            _ => true,
        };
        let pruning = version.has_pruning() && prune_ok;

        let tasks: Vec<&ChunkTask> = if pruning {
            plan.pruned_tasks(&tracker).collect()
        } else {
            plan.tasks().iter().collect()
        };
        let kept_chunks: usize = tasks.iter().map(|t| t.len()).sum();
        tl.count_pruned((plan.total_chunks() - kept_chunks) as u64);
        tl.count_processed(kept_chunks as u64);
        if let Some(r) = rec {
            r.add("chunks.pruned", (plan.total_chunks() - kept_chunks) as u64);
            r.add("chunks.processed", kept_chunks as u64);
            r.observe_n("chunk.bytes", chunk_bytes, kept_chunks as u64);
        }

        // ---- functional update --------------------------------------
        // Surviving tasks touch disjoint chunks, so applying them all up
        // front leaves every per-chunk compressed size identical to
        // updating inside the task loop below.
        let mut singles: Vec<usize> = Vec::new();
        let mut groups: Vec<&[usize]> = Vec::new();
        for task in &tasks {
            match task {
                ChunkTask::Single(c) => singles.push(*c),
                ChunkTask::Group(g) => groups.push(g),
            }
        }
        if !singles.is_empty() {
            let _g = span_opt(rec, Track::Main, Stage::Update, "update.local");
            let restarts = executor.try_apply_local_run(&mut state, fop.actions(), &singles)?;
            if restarts > 0 {
                tl.count_worker_restarts(restarts);
                if let Some(r) = rec {
                    r.add("worker.restarts", restarts);
                }
            }
        }
        if !groups.is_empty() {
            let _g = span_opt(rec, Track::Main, Stage::Update, "update.group");
            let restarts = executor.try_apply_group_runs(
                &mut state,
                fop.actions(),
                &groups,
                plan.high_mixing(),
            )?;
            if restarts > 0 {
                tl.count_worker_restarts(restarts);
                if let Some(r) = rec {
                    r.add("worker.restarts", restarts);
                }
            }
        }

        // GFC sizes for every member moving back this gate, computed in
        // one pass so the measured Compress span has per-gate — not
        // per-chunk — granularity. Tasks touch disjoint chunks, so the
        // sizes are identical to compressing inside the task loop below.
        let mut new_sizes: HashMap<usize, usize> = HashMap::new();
        let mut raw_members = 0usize;
        if compressing {
            let _g = span_opt(rec, Track::Main, Stage::Compress, "gfc.compress");
            for task in &tasks {
                for &m in task.chunks() {
                    if pruning && tracker_after.chunk_is_zero(m, chunk_bits) {
                        continue;
                    }
                    // Injected encode failure: mark the member for a raw
                    // (uncompressed) download fallback.
                    if resil.as_mut().is_some_and(Resilience::codec_fails) {
                        tl.count_codec_fallback();
                        if let Some(r) = rec {
                            r.add("codec.fallbacks", 1);
                        }
                        new_sizes.insert(m, RAW_FALLBACK);
                        raw_members += 1;
                        continue;
                    }
                    let sz = match state.chunk(m) {
                        Some(amps) => {
                            if let Some(rs) = resil.as_mut() {
                                rs.seal_at_encode(m, amps);
                            }
                            compressed_size(&codec, amps, chunk_bytes as usize, rec)
                        }
                        None => {
                            if let Some(rs) = resil.as_mut() {
                                rs.seal_zero_at_encode(m, chunk_bits);
                            }
                            *zero_chunk_size.entry(chunk_bits).or_insert_with(|| {
                                let zeros = vec![Complex64::ZERO; 1 << chunk_bits];
                                compressed_size(&codec, &zeros, chunk_bytes as usize, rec)
                            })
                        }
                    };
                    new_sizes.insert(m, sz);
                }
            }
        }

        for task in tasks {
            let gpu = match orch.as_mut() {
                Some(o) => {
                    // Backlogs only matter for victim selection, so a
                    // healthy (un-armed) fleet skips gathering them.
                    if o.group.steal_armed() {
                        for (g, b) in backlog.iter_mut().enumerate() {
                            *b = tl.engine_available(Engine::GpuCompute(g));
                        }
                    }
                    let (g, stolen) = o.group.assign(task_counter, &backlog);
                    if stolen {
                        tl.count_steal();
                        if let Some(r) = rec {
                            r.add("orch.steals", 1);
                        }
                    }
                    g
                }
                None => rr.gpu_for_task(task_counter),
            };
            task_counter += 1;
            let link = cfg.platform.link(gpu);
            let gspec = cfg.platform.gpu(gpu);
            let members = task.chunks();

            // ---- upload --------------------------------------------------
            // Pruning versions skip provably-zero members; others move all.
            let mut h2d_bytes = 0u64;
            let mut raw_up_compressed = 0u64; // raw bytes arriving compressed
            for &m in members {
                let provably_zero = pruning && tracker.chunk_is_zero(m, chunk_bits);
                if provably_zero {
                    continue;
                }
                match (compressing, compressed.get(&m)) {
                    (true, Some(&sz)) => {
                        h2d_bytes += sz as u64;
                        raw_up_compressed += chunk_bytes;
                    }
                    _ => h2d_bytes += chunk_bytes,
                }
            }

            // ---- readiness ----------------------------------------------
            let mut ready = epoch_floor;
            for &m in members {
                if let Some(&t) = last_d2h.get(&m) {
                    ready = ready.max(t);
                }
            }
            if version.has_overlap() {
                let base_cap = ((gspec.mem_bytes as f64 * cfg.buffer_split) as u64 / chunk_bytes)
                    .max(members.len() as u64) as usize;
                let inflight = windows[gpu].inflight;
                let cap = match orch.as_mut() {
                    Some(o) => o.governed_cap(
                        base_cap,
                        inflight,
                        members.len(),
                        chunk_bits,
                        chunk_bytes,
                        compressing,
                        &mut tl,
                        rec,
                    ),
                    None => base_cap,
                };
                let w = &mut windows[gpu];
                while w.inflight + members.len() > cap {
                    match w.slots.pop_front() {
                        Some((end, held)) => {
                            ready = ready.max(end);
                            w.inflight -= held;
                        }
                        None => break,
                    }
                }
                if orch.as_ref().is_some_and(|o| o.governor.is_some()) {
                    tl.observe_resident_bytes((w.inflight + members.len()) as u64 * chunk_bytes);
                }
            } else {
                ready = ready.max(chain);
                if let Some(o) = orch.as_mut() {
                    o.governed_cap(
                        members.len(),
                        0,
                        members.len(),
                        chunk_bits,
                        chunk_bytes,
                        compressing,
                        &mut tl,
                        rec,
                    );
                    if o.governor.is_some() {
                        tl.observe_resident_bytes(members.len() as u64 * chunk_bytes);
                    }
                }
            }

            // ---- H2D → decompress → kernel ------------------------------
            if let Some(rs) = resil.as_mut() {
                rs.seal_for_upload(&state, members, chunk_bits, |m| {
                    pruning && tracker.chunk_is_zero(m, chunk_bits)
                });
            }
            let h2d = transfer_with_integrity(
                &mut tl,
                Engine::HostDmaOut,
                Engine::H2d(gpu),
                TaskKind::H2dCopy,
                ready,
                h2d_bytes,
                link,
                cfg.platform.host.copy_bw,
                resil.as_mut(),
                rec,
            )?;
            let mut compute_ready = h2d.end;
            if raw_up_compressed > 0 {
                let d = tl.schedule(
                    Engine::GpuCompute(gpu),
                    compute_ready,
                    raw_up_compressed as f64 / gspec.compress_bw(),
                    TaskKind::Decompress,
                    raw_up_compressed,
                );
                compute_ready = d.end;
            }
            let task_bytes = members.len() as u64 * chunk_bytes;
            let stretch = resil.as_mut().map_or(1.0, |rs| {
                rs.kernel_stretch() * rs.inj.straggler_stretch(gpu)
            });
            let kernel_s = (task_bytes as f64 / gspec.update_bw() + gspec.kernel_launch) * stretch;
            let kernel = tl.schedule(
                Engine::GpuCompute(gpu),
                compute_ready,
                kernel_s,
                TaskKind::Kernel,
                task_bytes,
            );
            tl.add_flops((task_bytes as f64 / 16.0) * fpa);
            if fop.is_fused() {
                tl.count_fused_kernel();
            }
            if let Some(o) = orch.as_mut() {
                // Pure kernel service time: queueing and codec spans
                // would let backlog leak into the pace estimate.
                o.group.record_task(gpu, kernel_s, task_bytes);
            }

            // ---- compress → D2H ------------------------------------------
            let mut d2h_ready = kernel.end;
            let mut d2h_bytes = 0u64;
            let mut raw_down_compressed = 0u64;
            for &m in members {
                let provably_zero = pruning && tracker_after.chunk_is_zero(m, chunk_bits);
                if provably_zero {
                    compressed.remove(&m);
                    continue;
                }
                if compressing {
                    let sz = new_sizes[&m];
                    if sz == RAW_FALLBACK {
                        // Encode failed for this member: raw download, no
                        // compress kernel time, nothing cached as compressed.
                        compressed.remove(&m);
                        d2h_bytes += chunk_bytes;
                    } else {
                        tl.record_compression(chunk_bytes, sz as u64);
                        compressed.insert(m, sz);
                        d2h_bytes += sz as u64;
                        raw_down_compressed += chunk_bytes;
                    }
                } else {
                    d2h_bytes += chunk_bytes;
                }
            }
            if raw_down_compressed > 0 {
                let cspan = tl.schedule(
                    Engine::GpuCompute(gpu),
                    d2h_ready,
                    raw_down_compressed as f64 / gspec.compress_bw(),
                    TaskKind::Compress,
                    raw_down_compressed,
                );
                d2h_ready = cspan.end;
            }
            // Arrival re-tags are paid only for members that moved raw:
            // a fully-pruned task (`d2h_bytes == 0`) and a fully-sealed
            // compressed task skip the pass entirely.
            if let Some(rs) = resil.as_mut() {
                if d2h_bytes > 0 {
                    if !compressing {
                        rs.verify_on_arrival(&state, members, chunk_bits, |m| {
                            pruning && tracker_after.chunk_is_zero(m, chunk_bits)
                        });
                    } else if raw_members > 0 {
                        // Compressed members were sealed at encode time;
                        // only raw codec-failure fallbacks need an
                        // arrival pass.
                        rs.verify_on_arrival(&state, members, chunk_bits, |m| {
                            new_sizes.get(&m) != Some(&RAW_FALLBACK)
                        });
                    }
                }
            }
            let d2h = transfer_with_integrity(
                &mut tl,
                Engine::HostDmaIn,
                Engine::D2h(gpu),
                TaskKind::D2hCopy,
                d2h_ready,
                d2h_bytes,
                link,
                cfg.platform.host.copy_bw,
                resil.as_mut(),
                rec,
            )?;

            for &m in members {
                last_d2h.insert(m, d2h.end);
            }
            if version.has_overlap() {
                windows[gpu].slots.push_back((d2h.end, members.len()));
                windows[gpu].inflight += members.len();
            } else {
                chain = d2h.end;
            }
        }

        // Window occupancy, sampled once per gate per device.
        if version.has_overlap() {
            if let Some(r) = rec {
                for w in &windows {
                    r.observe("window.inflight", w.inflight as u64);
                }
            }
        }

        if !version.has_overlap() {
            // Naive: a full synchronization after every gate.
            let s = tl.schedule(
                Engine::Host,
                chain,
                cfg.platform.host.sync_latency,
                TaskKind::Sync,
                0,
            );
            chain = s.end;
        }
        tracker = tracker_after;
    }

    if let (Some(rs), Some(r)) = (resil.as_ref(), rec) {
        r.add("integrity.retags", rs.retags);
    }
    let report = ExecutionReport::from_timeline(&tl, num_gpus);
    Ok(RunResult {
        version,
        circuit_name: circuit.name().to_string(),
        state: cfg.collect_state.then(|| state.to_flat()),
        report,
        trace: tl.trace().to_vec(),
        obs: None,
    })
}

/// Real GFC size of a chunk, capped at raw size (the scheme falls back to
/// the raw representation if compression would expand the data). Records
/// the per-chunk ratio histogram; the wall-clock Compress span is opened
/// by the caller at per-gate granularity (a span per chunk would swamp
/// the recorder on million-chunk runs).
fn compressed_size(
    codec: &GfcCodec,
    amps: &[Complex64],
    raw_bytes: usize,
    rec: Option<&Recorder>,
) -> usize {
    let out = codec.compress_amplitudes(amps).total_bytes().min(raw_bytes);
    if let Some(r) = rec {
        r.observe("compress.ratio.x100", (raw_bytes * 100 / out.max(1)) as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Version;
    use crate::engine::Simulator;
    use qgpu_circuit::generators::Benchmark;

    fn run_version(b: Benchmark, n: usize, v: Version) -> RunResult {
        let c = b.generate(n);
        Simulator::new(SimConfig::scaled_paper(n).with_version(v)).run(&c)
    }

    #[test]
    fn naive_moves_the_whole_state_per_gate() {
        let n = 10;
        let c = Benchmark::Qft.generate(n);
        let r = Simulator::new(SimConfig::scaled_paper(n).with_version(Version::Naive)).run(&c);
        // Every gate uploads and downloads every byte of the state.
        let state_bytes = (1u64 << n) * 16;
        assert_eq!(r.report.bytes_h2d, state_bytes * c.len() as u64);
        assert_eq!(r.report.bytes_d2h, state_bytes * c.len() as u64);
        assert_eq!(r.report.host_time, 0.0);
    }

    #[test]
    fn overlap_beats_naive_with_same_bytes() {
        let naive = run_version(Benchmark::Qft, 11, Version::Naive);
        let overlap = run_version(Benchmark::Qft, 11, Version::Overlap);
        assert_eq!(naive.report.bytes_h2d, overlap.report.bytes_h2d);
        assert!(
            overlap.report.total_time < 0.8 * naive.report.total_time,
            "overlap {:.4} vs naive {:.4}",
            overlap.report.total_time,
            naive.report.total_time
        );
    }

    #[test]
    fn pruning_reduces_bytes_on_late_involving_circuits() {
        let overlap = run_version(Benchmark::Iqp, 12, Version::Overlap);
        let pruning = run_version(Benchmark::Iqp, 12, Version::Pruning);
        assert!(
            pruning.report.bytes_h2d < overlap.report.bytes_h2d / 2,
            "pruning {} vs overlap {}",
            pruning.report.bytes_h2d,
            overlap.report.bytes_h2d
        );
        assert!(pruning.report.chunks_pruned > 0);
    }

    #[test]
    fn pruning_barely_helps_qft() {
        // Paper: qft involves all qubits immediately; pruning is weak.
        let overlap = run_version(Benchmark::Qft, 12, Version::Overlap);
        let pruning = run_version(Benchmark::Qft, 12, Version::Pruning);
        let saving = 1.0 - pruning.report.bytes_h2d as f64 / overlap.report.bytes_h2d.max(1) as f64;
        assert!(saving < 0.35, "qft pruning saving {saving:.2} too large");
    }

    #[test]
    fn compression_reduces_transfer_on_smooth_states() {
        // qaoa's repetitive amplitudes compress well (paper Figure 10);
        // 15 qubits so chunks carry enough GFC prediction context (the
        // exact ratio depends on the random graph the generator draws, and
        // at 14 qubits it hovers right at the threshold).
        let reorder = run_version(Benchmark::Qaoa, 15, Version::Reorder);
        let qgpu = run_version(Benchmark::Qaoa, 15, Version::QGpu);
        assert!(
            qgpu.report.bytes_d2h < reorder.report.bytes_d2h,
            "compression should reduce D2H bytes: {} vs {}",
            qgpu.report.bytes_d2h,
            reorder.report.bytes_d2h
        );
        assert!(qgpu.report.compression_ratio() > 1.2);
    }

    #[test]
    fn compression_overhead_is_bounded() {
        // Paper Figure 14: compress ~3.3%, decompress ~2.8% of exec time.
        let qgpu = run_version(Benchmark::Qaoa, 14, Version::QGpu);
        assert!(
            qgpu.report.compression_overhead() < 0.25,
            "overhead {:.3}",
            qgpu.report.compression_overhead()
        );
    }

    #[test]
    fn states_identical_across_streaming_versions() {
        let c = Benchmark::Hlf.generate(10);
        let reference = {
            let mut s = qgpu_statevec::StateVector::new_zero(10);
            s.run(&c);
            s
        };
        for v in [
            Version::Naive,
            Version::Overlap,
            Version::Pruning,
            Version::Reorder,
            Version::QGpu,
        ] {
            let r = Simulator::new(SimConfig::scaled_paper(10).with_version(v)).run(&c);
            let dev = r.state.expect("collected").max_deviation(&reference);
            assert!(dev < 1e-10, "{v}: deviation {dev}");
        }
    }

    #[test]
    fn multi_gpu_scales_streaming_until_host_dma_saturates() {
        use qgpu_device::Platform;
        let c = Benchmark::Qft.generate(12);
        // P4 server: 4 x PCIe (54 GB/s aggregate) against a 45 GB/s host
        // DMA path -> ~3.3x scaling, like the paper's ~3x.
        let quad = Simulator::new(
            SimConfig::new(Platform::quad_p4_pcie().miniaturize(12, 0.05))
                .with_version(Version::Overlap),
        );
        let mut one_gpu_platform = Platform::quad_p4_pcie().miniaturize(12, 0.05);
        one_gpu_platform.gpus.truncate(1);
        one_gpu_platform.links.truncate(1);
        let single_gpu =
            Simulator::new(SimConfig::new(one_gpu_platform).with_version(Version::Overlap));
        let t4 = quad.run(&c).report.total_time;
        let t1 = single_gpu.run(&c).report.total_time;
        let scaling = t1 / t4;
        assert!(
            (2.0..4.2).contains(&scaling),
            "4xP4 scaling {scaling:.2}x should approach but not exceed 4x"
        );
    }

    #[test]
    fn gate_batching_preserves_state_and_reduces_transfers() {
        for b in [Benchmark::Qft, Benchmark::Iqp, Benchmark::Hchain] {
            let c = b.generate(11);
            let plain =
                Simulator::new(SimConfig::scaled_paper(11).with_version(Version::QGpu)).run(&c);
            let batched = Simulator::new(
                SimConfig::scaled_paper(11)
                    .with_version(Version::QGpu)
                    .with_gate_batching(),
            )
            .run(&c);
            let dev = batched
                .state
                .expect("collected")
                .max_deviation(plain.state.as_ref().expect("collected"));
            assert!(dev < 1e-10, "{b}: batching changed the state ({dev})");
            assert!(
                batched.report.bytes_h2d < plain.report.bytes_h2d,
                "{b}: batching must reduce uploads ({} vs {})",
                batched.report.bytes_h2d,
                plain.report.bytes_h2d
            );
            assert!(
                batched.report.total_time <= plain.report.total_time * 1.02,
                "{b}: batching must not slow execution"
            );
        }
    }

    #[test]
    fn gate_batching_handles_cross_boundary_gates() {
        // A circuit alternating local and high-mixing gates exercises
        // batch flushing around Case-2 gates.
        let mut c = qgpu_circuit::Circuit::new(10);
        for q in 0..10 {
            c.h(q);
        }
        c.cx(0, 9).t(1).swap(2, 9).rz(0.3, 0).cx(9, 1);
        let mut reference = qgpu_statevec::StateVector::new_zero(10);
        reference.run(&c);
        for v in [Version::Naive, Version::Overlap, Version::QGpu] {
            let r = Simulator::new(
                SimConfig::scaled_paper(10)
                    .with_version(v)
                    .with_gate_batching(),
            )
            .run(&c);
            let dev = r.state.expect("collected").max_deviation(&reference);
            assert!(dev < 1e-10, "{v}: deviation {dev}");
        }
    }

    #[test]
    fn trace_events_recorded() {
        let c = Benchmark::Gs.generate(8);
        let cfg = SimConfig::scaled_paper(8)
            .with_version(Version::Overlap)
            .with_trace(500);
        let r = Simulator::new(cfg).run(&c);
        assert!(!r.trace.is_empty());
        assert!(r.trace.len() <= 500);
    }

    // ---- fault injection & resilience -------------------------------

    use qgpu_faults::{FaultConfig, SimError};

    fn assert_bitwise_eq(a: &qgpu_statevec::StateVector, b: &qgpu_statevec::StateVector) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            let (x, y) = (a.amp(i), b.amp(i));
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "amplitude {i} differs"
            );
        }
    }

    #[test]
    fn seeded_injection_is_absorbed_bit_exactly() {
        // Transfer corruption, codec failures, mask corruption and stage
        // slowdowns at realistic rates: the run completes, the state is
        // bit-identical to the fault-free run, and every recovery shows
        // up in the report with its modeled time cost.
        let c = Benchmark::Qft.generate(12);
        let clean = Simulator::new(SimConfig::scaled_paper(12).with_version(Version::QGpu)).run(&c);
        let faults = FaultConfig {
            seed: 42,
            p_transfer_corrupt: 0.01,
            p_codec_fail: 0.02,
            p_mask_corrupt: 0.1,
            p_stage_slowdown: 0.02,
            ..FaultConfig::default()
        };
        let faulty = Simulator::new(
            SimConfig::scaled_paper(12)
                .with_version(Version::QGpu)
                .with_faults(faults),
        )
        .try_run(&c)
        .expect("faults at these rates must be absorbed");
        assert_bitwise_eq(
            clean.state.as_ref().expect("collected"),
            faulty.state.as_ref().expect("collected"),
        );
        assert!(faulty.report.chunk_retries > 0, "no transfer retries fired");
        assert!(
            faulty.report.codec_fallbacks > 0,
            "no codec fallbacks fired"
        );
        assert!(
            faulty.report.prune_fallbacks > 0,
            "no prune fallbacks fired"
        );
        assert!(
            faulty.report.total_time > clean.report.total_time,
            "recoveries must cost modeled time: {} vs {}",
            faulty.report.total_time,
            clean.report.total_time
        );
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let c = Benchmark::Iqp.generate(11);
        let faults = FaultConfig {
            seed: 7,
            p_transfer_corrupt: 0.02,
            p_codec_fail: 0.02,
            ..FaultConfig::default()
        };
        let run = || {
            Simulator::new(
                SimConfig::scaled_paper(11)
                    .with_version(Version::QGpu)
                    .with_faults(faults),
            )
            .try_run(&c)
            .expect("absorbed")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.report.total_time, b.report.total_time);
        assert_eq!(a.report.chunk_retries, b.report.chunk_retries);
        assert_eq!(a.report.codec_fallbacks, b.report.codec_fallbacks);
        assert!(a.report.chunk_retries > 0);
    }

    #[test]
    fn injected_worker_deaths_recover_in_the_engine_loop() {
        // 15 qubits so per-op dispatches cross the executor's parallel
        // threshold and the worker pool actually runs (and dies).
        let c = Benchmark::Qft.generate(15);
        let base = SimConfig::scaled_paper(15)
            .with_version(Version::QGpu)
            .with_threads(4);
        let clean = Simulator::new(base.clone()).run(&c);
        let faults = FaultConfig {
            seed: 9,
            p_worker_death: 0.05,
            ..FaultConfig::default()
        };
        let faulty = Simulator::new(base.with_faults(faults))
            .try_run(&c)
            .expect("worker deaths must be recovered");
        assert_bitwise_eq(
            clean.state.as_ref().expect("collected"),
            faulty.state.as_ref().expect("collected"),
        );
        assert!(
            faulty.report.worker_restarts > 0,
            "no worker deaths injected at 15 qubits / 5%"
        );
    }

    #[test]
    fn integrity_checks_alone_change_nothing() {
        // CRC sealing/verification without injected faults: same bits,
        // same modeled timing, zero recovery events.
        let c = Benchmark::Qaoa.generate(12);
        for v in [Version::Naive, Version::QGpu] {
            let plain = Simulator::new(SimConfig::scaled_paper(12).with_version(v)).run(&c);
            let checked = Simulator::new(
                SimConfig::scaled_paper(12)
                    .with_version(v)
                    .with_integrity_checks(),
            )
            .run(&c);
            assert_eq!(plain.report.total_time, checked.report.total_time);
            assert_eq!(plain.report.bytes_h2d, checked.report.bytes_h2d);
            assert_eq!(plain.report.bytes_d2h, checked.report.bytes_d2h);
            assert_eq!(checked.report.chunk_retries, 0);
            assert_eq!(checked.report.codec_fallbacks, 0);
            assert_bitwise_eq(
                plain.state.as_ref().expect("collected"),
                checked.state.as_ref().expect("collected"),
            );
        }
    }

    #[test]
    fn injected_fatal_checkpoints_and_resumes_bit_exactly() {
        let c = Benchmark::Iqp.generate(10);
        let base = SimConfig::scaled_paper(10).with_version(Version::QGpu);
        let clean = Simulator::new(base.clone()).run(&c);
        let path =
            std::env::temp_dir().join(format!("qgpu_resume_test_{}.ckpt", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path").to_string();

        let kill_at = c.len() / 2;
        let faults = FaultConfig {
            fail_at_gate: kill_at,
            ..FaultConfig::default()
        };
        let err = Simulator::new(
            base.clone()
                .with_faults(faults)
                .with_checkpointing(5, &path),
        )
        .try_run(&c)
        .expect_err("fatal fault must abort the run");
        assert!(
            matches!(err, SimError::Fatal { gate, .. } if gate == kill_at),
            "unexpected error: {err}"
        );

        let ck = crate::checkpoint::load_with_progress(&path).expect("checkpoint written");
        assert!(ck.gates_done > 0 && ck.gates_done <= kill_at as u64);
        let resumed = Simulator::new(base)
            .try_run_from(&c, Some(&ck))
            .expect("resume");
        assert_bitwise_eq(
            clean.state.as_ref().expect("collected"),
            resumed.state.as_ref().expect("collected"),
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_mismatched_checkpoints() {
        let c = Benchmark::Qft.generate(10);
        let base = SimConfig::scaled_paper(10).with_version(Version::QGpu);
        // Wrong qubit count.
        let ck = crate::checkpoint::Checkpoint {
            state: qgpu_statevec::StateVector::new_zero(8),
            gates_done: 1,
        };
        assert!(matches!(
            Simulator::new(base.clone()).try_run_from(&c, Some(&ck)),
            Err(SimError::Checkpoint(_))
        ));
        // Progress beyond the end of the program.
        let ck = crate::checkpoint::Checkpoint {
            state: qgpu_statevec::StateVector::new_zero(10),
            gates_done: c.len() as u64 + 1,
        };
        assert!(matches!(
            Simulator::new(base).try_run_from(&c, Some(&ck)),
            Err(SimError::Checkpoint(_))
        ));
    }

    #[test]
    fn exhausted_retries_surface_as_chunk_corrupt() {
        // Certain corruption on every attempt: the retry budget runs out
        // and the typed error escapes instead of a hang or a panic.
        let c = Benchmark::Qft.generate(9);
        let faults = FaultConfig {
            p_transfer_corrupt: 1.0,
            ..FaultConfig::default()
        };
        let err = Simulator::new(
            SimConfig::scaled_paper(9)
                .with_version(Version::Naive)
                .with_faults(faults),
        )
        .try_run(&c)
        .expect_err("certain corruption must exhaust retries");
        assert!(
            matches!(err, SimError::ChunkCorrupt { attempts, .. } if attempts > 1),
            "unexpected error: {err}"
        );
    }

    // ---- resilient multi-device orchestration ---------------------------

    use qgpu_device::Platform;
    use qgpu_sched::devicegroup::OrchestratorConfig;

    /// A miniaturized `d`-device fleet at the paper's residency ratio.
    fn fleet_cfg(n: usize, d: usize, v: Version) -> SimConfig {
        let p = Platform::scaled_paper_p100(n).with_devices(d);
        SimConfig::new(p).with_version(v)
    }

    #[test]
    fn orchestrated_fault_free_run_matches_plain_and_never_migrates() {
        // Turning orchestration on without any fault or budget must be
        // invisible: same modeled time, same bytes, zero migrations.
        let n = 11;
        let c = Benchmark::Qft.generate(n);
        for v in [Version::Overlap, Version::QGpu] {
            let plain = Simulator::new(fleet_cfg(n, 4, v)).run(&c);
            let orch = Simulator::new(
                fleet_cfg(n, 4, v).with_orchestration(OrchestratorConfig::default()),
            )
            .run(&c);
            assert_bitwise_eq(
                plain.state.as_ref().expect("collected"),
                orch.state.as_ref().expect("collected"),
            );
            assert_eq!(
                plain.report.total_time, orch.report.total_time,
                "{v}: orchestration changed fault-free modeled time"
            );
            assert_eq!(orch.report.devices_lost, 0);
            assert_eq!(orch.report.chunks_migrated, 0);
            assert_eq!(orch.report.steals, 0, "{v}: healthy run migrated work");
            assert_eq!(orch.report.pressure_downshifts, 0);
        }
    }

    #[test]
    fn device_loss_recovers_bit_exactly_with_modeled_cost() {
        let n = 12;
        let c = Benchmark::Qft.generate(n);
        for v in [Version::Naive, Version::Overlap, Version::QGpu] {
            let clean = Simulator::new(fleet_cfg(n, 4, v)).run(&c);
            let faults = FaultConfig {
                device_lost_at: 5,
                device_lost_id: 1,
                ..FaultConfig::default()
            };
            let lossy = Simulator::new(fleet_cfg(n, 4, v).with_faults(faults))
                .try_run(&c)
                .expect("three survivors must absorb one loss");
            assert_bitwise_eq(
                clean.state.as_ref().expect("collected"),
                lossy.state.as_ref().expect("collected"),
            );
            assert_eq!(lossy.report.devices_lost, 1, "{v}");
            assert!(
                lossy.report.total_time > clean.report.total_time,
                "{v}: recovery must cost modeled time ({} vs {})",
                lossy.report.total_time,
                clean.report.total_time
            );
        }
    }

    #[test]
    fn device_loss_mid_run_migrates_replay_work() {
        // Lose a device deep enough into the run that its since-barrier
        // log is non-empty: the replay shows up as migrated chunks.
        let n = 12;
        let c = Benchmark::Qft.generate(n);
        let faults = FaultConfig {
            device_lost_at: 20,
            device_lost_id: 2,
            ..FaultConfig::default()
        };
        let lossy = Simulator::new(fleet_cfg(n, 4, Version::Overlap).with_faults(faults))
            .try_run(&c)
            .expect("survivors absorb the loss");
        assert_eq!(lossy.report.devices_lost, 1);
        assert!(
            lossy.report.chunks_migrated > 0,
            "no chunks migrated on a mid-run loss"
        );
    }

    #[test]
    fn losing_the_only_device_is_a_typed_error() {
        let c = Benchmark::Qft.generate(10);
        let faults = FaultConfig {
            device_lost_at: 3,
            device_lost_id: 0,
            ..FaultConfig::default()
        };
        let err = Simulator::new(fleet_cfg(10, 1, Version::Overlap).with_faults(faults))
            .try_run(&c)
            .expect_err("no survivors: the run cannot continue");
        assert!(
            matches!(err, SimError::AllDevicesLost { device: 0 }),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn straggler_triggers_steals_and_stays_bit_exact() {
        let n = 12;
        let c = Benchmark::Qft.generate(n);
        let clean = Simulator::new(fleet_cfg(n, 4, Version::Overlap)).run(&c);
        let faults = FaultConfig {
            straggler_device: 1,
            slowdown_factor: 8.0,
            ..FaultConfig::default()
        };
        let slow = Simulator::new(fleet_cfg(n, 4, Version::Overlap).with_faults(faults))
            .try_run(&c)
            .expect("a straggler is not fatal");
        assert_bitwise_eq(
            clean.state.as_ref().expect("collected"),
            slow.state.as_ref().expect("collected"),
        );
        assert!(
            slow.report.steals > 0,
            "an 8x straggler must shed work to its peers"
        );
        assert_eq!(slow.report.devices_lost, 0);
    }

    #[test]
    fn link_degradation_counts_and_stays_bit_exact() {
        let n = 11;
        let c = Benchmark::Qft.generate(n);
        let clean = Simulator::new(fleet_cfg(n, 2, Version::Overlap)).run(&c);
        let faults = FaultConfig {
            p_link_degraded: 0.05,
            link_degrade_factor: 4.0,
            ..FaultConfig::default()
        };
        let degraded = Simulator::new(fleet_cfg(n, 2, Version::Overlap).with_faults(faults))
            .try_run(&c)
            .expect("degraded links only slow the run");
        assert_bitwise_eq(
            clean.state.as_ref().expect("collected"),
            degraded.state.as_ref().expect("collected"),
        );
        assert!(degraded.report.link_degradations > 0);
        assert!(degraded.report.total_time > clean.report.total_time);
    }

    #[test]
    fn memory_budget_degrades_but_never_exceeds_the_budget() {
        let n = 12;
        let c = Benchmark::Qft.generate(n);
        let clean = Simulator::new(fleet_cfg(n, 2, Version::Overlap)).run(&c);
        // A budget of four base chunks per device: tight enough to bind
        // on a fleet whose window would otherwise hold more.
        let chunk_bytes = 16u64 << fleet_cfg(n, 2, Version::Overlap).chunk_bits_for(n);
        let budget = 4 * chunk_bytes;
        let tight = Simulator::new(fleet_cfg(n, 2, Version::Overlap).with_mem_budget(budget))
            .try_run(&c)
            .expect("pressure degrades, never fails");
        assert_bitwise_eq(
            clean.state.as_ref().expect("collected"),
            tight.state.as_ref().expect("collected"),
        );
        assert!(
            tight.report.peak_resident_bytes <= budget,
            "peak residency {} exceeded budget {budget}",
            tight.report.peak_resident_bytes
        );
        assert!(tight.report.peak_resident_bytes > 0);
    }

    #[test]
    fn resumed_compressed_run_pays_no_arrival_retags() {
        // Satellite regression: every compressed chunk's tag is sealed at
        // encode time and travels with the data — a resumed Q-GPU run
        // (whose tag cache starts empty) must not re-tag on arrival, and
        // must stay bit-exact. An uncompressed run pays honest re-tags.
        let n = 10;
        let c = Benchmark::Qft.generate(n);
        let dir = std::env::temp_dir().join(format!("qgpu-retag-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let ckpt = dir.join("retag.ckpt");
        let retags = |r: &RunResult| -> u64 {
            r.obs
                .as_ref()
                .expect("obs enabled")
                .metrics
                .counters
                .iter()
                .find(|(name, _)| name == "integrity.retags")
                .map_or(0, |&(_, v)| v)
        };
        let base = |v: Version| {
            SimConfig::scaled_paper(n)
                .with_version(v)
                .with_obs_spans()
                .with_integrity_checks()
                .with_checkpointing(10, ckpt.to_str().expect("utf8 path"))
        };
        let clean = Simulator::new(base(Version::QGpu)).run(&c);

        // Kill the run mid-way, then resume from the checkpoint.
        let faults = FaultConfig {
            fail_at_gate: 25,
            ..FaultConfig::default()
        };
        let err = Simulator::new(base(Version::QGpu).with_faults(faults)).try_run(&c);
        assert!(matches!(err, Err(SimError::Fatal { .. })));
        let ck = crate::checkpoint::load_with_progress(ckpt.to_str().expect("utf8 path"))
            .expect("checkpoint written");
        let resumed = Simulator::new(base(Version::QGpu))
            .try_run_from(&c, Some(&ck))
            .expect("resume");
        assert_bitwise_eq(
            clean.state.as_ref().expect("collected"),
            resumed.state.as_ref().expect("collected"),
        );
        assert_eq!(
            retags(&resumed),
            0,
            "compressed chunks must never re-tag on arrival"
        );
        // The uncompressed control run pays real arrival re-tags.
        let control = Simulator::new(base(Version::Overlap)).run(&c);
        assert!(retags(&control) > 0, "raw transfers must re-tag");
        std::fs::remove_dir_all(&dir).ok();
    }
}
