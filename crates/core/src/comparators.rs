//! Comparator simulators (paper §V-A, §V-C, Figures 12 and 16).
//!
//! The paper compares Q-GPU against three CPU simulators. We re-implement
//! their characteristic execution strategies on the same functional
//! substrate and charge them to the same host model, so the comparison is
//! driven by algorithmic properties rather than codebase details:
//!
//! * [`cpu_parallel`] — Qiskit-Aer's **CPU-OpenMP** engine: one
//!   full-state pass per gate at the host's effective multithreaded
//!   bandwidth;
//! * [`fusion`] + [`qsim_like`] — Google **Qsim-Cirq**: gate fusion merges
//!   runs of adjacent gates into small dense unitaries, trading fewer
//!   state passes for heavier per-pass math;
//! * [`qdk_like`] — Microsoft **QDK**: a straightforward engine whose
//!   state passes run without the aggressive multithreaded tuning
//!   (calibrated to the relative performance the paper observes).

use qgpu_circuit::access::GateAction;
use qgpu_circuit::{Circuit, Matrix, Operation};
use qgpu_device::HostSpec;
use qgpu_math::Complex64;
use qgpu_statevec::StateVector;

/// A comparator run: the real final state plus the modeled time.
#[derive(Debug, Clone)]
pub struct ComparatorResult {
    /// Which engine produced it.
    pub engine: &'static str,
    /// Modeled wall-clock seconds.
    pub total_time: f64,
    /// The final state.
    pub state: StateVector,
}

/// Derating of Qsim-like passes vs. the tuned OpenMP loop: a fused
/// 3-qubit dense pass does 8× the per-amplitude math of a specialized
/// 1-qubit kernel plus gather/scatter, so each pass is markedly slower
/// even though there are fewer of them. Calibrated so the Qsim-like
/// engine lands ≈ 1.3–1.4× behind CPU-OpenMP end-to-end, matching the
/// ratio implied by the paper's Figures 12 and 16 (2.02× / 1.49×).
const QSIM_PASS_EFFICIENCY: f64 = 0.30;

/// Single-thread fraction of the host's multithreaded bandwidth plus
/// engine overhead, calibrated to the ≈ 7× gap between QDK and the
/// OpenMP engine implied by the paper's Figure 16 (10.82× / 1.49×).
const QDK_BANDWIDTH_FRACTION: f64 = 0.14;

/// Runs the Qiskit-Aer CPU-OpenMP comparator.
///
/// # Examples
///
/// ```
/// use qgpu::comparators::cpu_parallel;
/// use qgpu_circuit::generators::Benchmark;
/// use qgpu_device::HostSpec;
///
/// let c = Benchmark::Bv.generate(8);
/// let r = cpu_parallel(&c, &HostSpec::dual_xeon_4114());
/// assert!(r.total_time > 0.0);
/// assert!((r.state.norm() - 1.0).abs() < 1e-9);
/// ```
pub fn cpu_parallel(circuit: &Circuit, host: &HostSpec) -> ComparatorResult {
    let n = circuit.num_qubits();
    let state_bytes = (1u64 << n) as f64 * 16.0;
    let mut state = StateVector::new_zero(n);
    // Functional execution really is multithreaded (like the OpenMP
    // engine it models); the *modeled* time still comes from the host
    // spec so comparisons against the device model stay consistent.
    let threads = (host.cores as usize).clamp(1, 8);
    state.run_parallel(circuit, threads);
    let time = circuit.len() as f64 * (state_bytes / host.update_bw + host.sync_latency);
    ComparatorResult {
        engine: "cpu-openmp",
        total_time: time,
        state,
    }
}

/// Runs the Qsim-Cirq-like comparator: gate fusion, then one pass per
/// fused unitary.
pub fn qsim_like(circuit: &Circuit, host: &HostSpec) -> ComparatorResult {
    let fused = fusion::fuse(circuit, 3);
    let n = circuit.num_qubits();
    let state_bytes = (1u64 << n) as f64 * 16.0;
    let mut state = StateVector::new_zero(n);
    let mut time = 0.0;
    for cluster in &fused {
        cluster.apply_to(&mut state);
        time += state_bytes / (host.update_bw * QSIM_PASS_EFFICIENCY) + host.sync_latency;
    }
    ComparatorResult {
        engine: "qsim-like",
        total_time: time,
        state,
    }
}

/// Runs the QDK-like comparator: one plain pass per gate at single-thread
/// throughput.
pub fn qdk_like(circuit: &Circuit, host: &HostSpec) -> ComparatorResult {
    let n = circuit.num_qubits();
    let state_bytes = (1u64 << n) as f64 * 16.0;
    let mut state = StateVector::new_zero(n);
    let mut time = 0.0;
    for op in circuit.iter() {
        state.apply(op);
        time += state_bytes / (host.update_bw * QDK_BANDWIDTH_FRACTION) + host.sync_latency;
    }
    ComparatorResult {
        engine: "qdk-like",
        total_time: time,
        state,
    }
}

/// Gate fusion: merging adjacent gates into small dense unitaries.
pub mod fusion {
    use super::*;

    /// A fused cluster: a dense unitary over up to `max_qubits` qubits.
    #[derive(Debug, Clone)]
    pub struct FusedCluster {
        qubits: Vec<usize>,
        matrix: Matrix,
    }

    impl FusedCluster {
        /// The qubits the cluster acts on (matrix bit order).
        pub fn qubits(&self) -> &[usize] {
            &self.qubits
        }

        /// The fused unitary.
        pub fn matrix(&self) -> &Matrix {
            &self.matrix
        }

        fn from_op(op: &Operation) -> Self {
            FusedCluster {
                qubits: op.qubits().to_vec(),
                matrix: op.gate().matrix(),
            }
        }

        /// Returns `true` if absorbing `op` keeps the cluster within
        /// `max_qubits`.
        fn can_absorb(&self, op: &Operation, max_qubits: usize) -> bool {
            let mut qs = self.qubits.clone();
            for &q in op.qubits() {
                if !qs.contains(&q) {
                    qs.push(q);
                }
            }
            qs.len() <= max_qubits
        }

        /// Absorbs `op` into the cluster: the cluster's unitary becomes
        /// `embed(op) · self`.
        fn absorb(&mut self, op: &Operation) {
            // Grow the qubit set.
            for &q in op.qubits() {
                if !self.qubits.contains(&q) {
                    self.qubits.push(q);
                    self.matrix = expand_matrix(&self.matrix, 1);
                }
            }
            let embedded = embed(op, &self.qubits);
            self.matrix = embedded.matmul(&self.matrix);
        }

        /// Applies the fused unitary to a state.
        pub fn apply_to(&self, state: &mut StateVector) {
            let op_like = GateAction::ControlledDense {
                controls: Vec::new(),
                mixing: self.qubits.clone(),
                matrix: self.matrix.clone(),
            };
            state.apply_action(&op_like);
        }
    }

    /// Tensor the matrix with a 1-qubit identity (new qubit becomes the
    /// highest matrix bit).
    fn expand_matrix(m: &Matrix, extra_qubits: usize) -> Matrix {
        let old = m.dim();
        let new = old << extra_qubits;
        let mut data = vec![Complex64::ZERO; new * new];
        for hi in 0..(1 << extra_qubits) {
            for r in 0..old {
                for c in 0..old {
                    data[(hi * old + r) * new + (hi * old + c)] = m.get(r, c);
                }
            }
        }
        Matrix::new(new, data)
    }

    /// Embeds `op`'s unitary into the cluster's qubit space.
    fn embed(op: &Operation, cluster_qubits: &[usize]) -> Matrix {
        let k = cluster_qubits.len();
        let dim = 1usize << k;
        let gm = op.gate().matrix();
        // Position of each op qubit within the cluster.
        let pos: Vec<usize> = op
            .qubits()
            .iter()
            .map(|q| {
                cluster_qubits
                    .iter()
                    .position(|cq| cq == q)
                    .expect("op qubit inside cluster")
            })
            .collect();
        let mut data = vec![Complex64::ZERO; dim * dim];
        for col in 0..dim {
            // Extract the op-subspace index of this column.
            let mut sub = 0usize;
            for (bit, &p) in pos.iter().enumerate() {
                sub |= ((col >> p) & 1) << bit;
            }
            for row_sub in 0..gm.dim() {
                let v = gm.get(row_sub, sub);
                if v.is_zero() {
                    continue;
                }
                // Build the full row index: col with op bits replaced.
                let mut row = col;
                for (bit, &p) in pos.iter().enumerate() {
                    row = (row & !(1 << p)) | (((row_sub >> bit) & 1) << p);
                }
                data[row * dim + col] = v;
            }
        }
        Matrix::new(dim, data)
    }

    /// Greedy gate fusion: scan the circuit, absorbing each gate into the
    /// previous cluster when the union of qubits stays within
    /// `max_qubits`; otherwise start a new cluster.
    ///
    /// # Panics
    ///
    /// Panics if `max_qubits` is 0 or greater than 10 (dense matrices
    /// beyond that are unreasonable).
    pub fn fuse(circuit: &Circuit, max_qubits: usize) -> Vec<FusedCluster> {
        assert!((1..=10).contains(&max_qubits));
        let mut clusters: Vec<FusedCluster> = Vec::new();
        for op in circuit.iter() {
            match clusters.last_mut() {
                Some(last) if last.can_absorb(op, max_qubits) => last.absorb(op),
                _ => clusters.push(FusedCluster::from_op(op)),
            }
        }
        clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgpu_circuit::generators::Benchmark;

    fn reference(c: &Circuit) -> StateVector {
        let mut s = StateVector::new_zero(c.num_qubits());
        s.run(c);
        s
    }

    #[test]
    fn all_comparators_compute_the_same_state() {
        let host = HostSpec::dual_xeon_4114();
        for b in [
            Benchmark::Gs,
            Benchmark::Hlf,
            Benchmark::Qft,
            Benchmark::Iqp,
        ] {
            let c = b.generate(9);
            let r = reference(&c);
            for result in [
                cpu_parallel(&c, &host),
                qsim_like(&c, &host),
                qdk_like(&c, &host),
            ] {
                let dev = result.state.max_deviation(&r);
                assert!(dev < 1e-9, "{b}/{}: deviation {dev}", result.engine);
            }
        }
    }

    #[test]
    fn relative_speeds_match_paper_ordering() {
        // OpenMP < qsim-like < qdk-like in time. Use a zero-sync host so
        // the small test state exercises the bandwidth terms, as large
        // states would.
        let mut host = HostSpec::dual_xeon_4114();
        host.sync_latency = 0.0;
        let c = Benchmark::Qft.generate(10);
        let omp = cpu_parallel(&c, &host).total_time;
        let qsim = qsim_like(&c, &host).total_time;
        let qdk = qdk_like(&c, &host).total_time;
        assert!(omp < qsim, "openmp {omp} < qsim {qsim}");
        assert!(qsim < qdk, "qsim {qsim} < qdk {qdk}");
        // Ballpark ratios from the paper: qdk/omp ≈ 7.
        assert!(
            qdk / omp > 3.0 && qdk / omp < 15.0,
            "qdk/omp = {}",
            qdk / omp
        );
    }

    #[test]
    fn fusion_reduces_pass_count() {
        let c = Benchmark::Qft.generate(10);
        let clusters = fusion::fuse(&c, 3);
        assert!(
            clusters.len() < c.len() / 2,
            "fusion should merge: {} clusters from {} gates",
            clusters.len(),
            c.len()
        );
    }

    #[test]
    fn fused_clusters_are_unitary() {
        let c = Benchmark::Gs.generate(8);
        for cluster in fusion::fuse(&c, 3) {
            assert!(
                cluster.matrix().is_unitary(1e-9),
                "fused cluster on {:?} is not unitary",
                cluster.qubits()
            );
        }
    }

    #[test]
    fn fusion_with_max_one_qubit_only_merges_single_qubit_runs() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).h(1).cx(0, 1);
        let clusters = fusion::fuse(&c, 1);
        // h+t fuse; h(1) separate; cx cannot fit in 1 qubit -> new cluster.
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn qdk_time_scales_with_gates() {
        let host = HostSpec::dual_xeon_4114();
        let c1 = Benchmark::Gs.generate(8);
        let c2 = Benchmark::Hchain.generate(8);
        let t1 = qdk_like(&c1, &host).total_time;
        let t2 = qdk_like(&c2, &host).total_time;
        assert!(t2 > t1, "deeper circuit must take longer");
    }
}
