//! State-vector checkpointing: save and restore simulation states with
//! GFC compression.
//!
//! Long simulations (the paper's 34-qubit runs take hours) benefit from
//! resumable checkpoints. The format reuses the same lossless GFC codec
//! the Q-GPU pipeline streams through, so smooth or sparse states persist
//! at a fraction of their in-memory size, and the restore is bit-exact.
//!
//! # Format
//!
//! ```text
//! magic "QGPUSTAT"   8 bytes
//! version            u32 LE (currently 1)
//! num_qubits         u32 LE
//! segment_count      u32 LE
//! per segment:       u64 LE length, then the GFC segment bytes
//! ```
//!
//! # Examples
//!
//! ```no_run
//! use qgpu::checkpoint;
//! use qgpu_statevec::StateVector;
//!
//! let state = StateVector::new_zero(20);
//! checkpoint::save(&state, "run.qgpustate")?;
//! let restored = checkpoint::load("run.qgpustate")?;
//! assert_eq!(restored.num_qubits(), 20);
//! # Ok::<(), qgpu::checkpoint::CheckpointError>(())
//! ```

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use qgpu_compress::GfcCodec;
use qgpu_statevec::StateVector;

const MAGIC: &[u8; 8] = b"QGPUSTAT";
const VERSION: u32 = 1;

/// Errors produced by checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file is not a checkpoint or is structurally damaged.
    Corrupt(&'static str),
    /// The GFC payload failed to decode.
    Decode(qgpu_compress::gfc::DecodeGfcError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Decode(e) => write!(f, "corrupt checkpoint payload: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Decode(e) => Some(e),
            CheckpointError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Saves a state vector to `path`, GFC-compressed.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failure.
pub fn save<P: AsRef<Path>>(state: &StateVector, path: P) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_to(state, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Writes a checkpoint to any writer (see module docs for the format).
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on write failure.
pub fn write_to<W: Write>(state: &StateVector, w: &mut W) -> Result<(), CheckpointError> {
    let codec = codec_for(state.num_qubits());
    let compressed = codec.compress_amplitudes(state.amps());
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(state.num_qubits() as u32).to_le_bytes())?;
    w.write_all(&(compressed.num_segments() as u32).to_le_bytes())?;
    for i in 0..compressed.num_segments() {
        let seg = compressed.segment(i);
        w.write_all(&(seg.len() as u64).to_le_bytes())?;
        w.write_all(seg)?;
    }
    Ok(())
}

/// Loads a state vector from `path`.
///
/// # Errors
///
/// Returns [`CheckpointError`] for I/O failures, structural corruption,
/// or undecodable payloads.
pub fn load<P: AsRef<Path>>(path: P) -> Result<StateVector, CheckpointError> {
    read_from(&mut BufReader::new(File::open(path)?))
}

/// Reads a checkpoint from any reader.
///
/// # Errors
///
/// See [`load`].
pub fn read_from<R: Read>(r: &mut R) -> Result<StateVector, CheckpointError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(CheckpointError::Corrupt("unsupported version"));
    }
    let num_qubits = read_u32(r)? as usize;
    if num_qubits == 0 || num_qubits >= 48 {
        return Err(CheckpointError::Corrupt("implausible qubit count"));
    }
    let segment_count = read_u32(r)? as usize;
    if segment_count == 0 || segment_count > 1 << 20 {
        return Err(CheckpointError::Corrupt("implausible segment count"));
    }
    let mut segments = Vec::with_capacity(segment_count);
    for _ in 0..segment_count {
        let mut len_bytes = [0u8; 8];
        r.read_exact(&mut len_bytes)?;
        let len = u64::from_le_bytes(len_bytes) as usize;
        if len > (1usize << num_qubits) * 20 + 64 {
            return Err(CheckpointError::Corrupt("implausible segment length"));
        }
        let mut seg = vec![0u8; len];
        r.read_exact(&mut seg)?;
        segments.push(seg);
    }
    let compressed = qgpu_compress::Compressed::from_parts(1usize << (num_qubits + 1), segments);
    let codec = codec_for(num_qubits);
    let amps = codec
        .try_decompress_amplitudes(&compressed)
        .map_err(CheckpointError::Decode)?;
    if amps.len() != 1usize << num_qubits {
        return Err(CheckpointError::Corrupt("amplitude count mismatch"));
    }
    Ok(StateVector::from_amplitudes(amps))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Segment count scaled to the state (≥ 8 micro-chunks per segment).
fn codec_for(num_qubits: usize) -> GfcCodec {
    let doubles = 2usize << num_qubits;
    GfcCodec::new((doubles / 256).clamp(1, 64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgpu_circuit::generators::Benchmark;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("qgpu-ckpt-{tag}-{}", std::process::id()))
    }

    fn benchmark_state(b: Benchmark, n: usize) -> StateVector {
        let c = b.generate(n);
        let mut s = StateVector::new_zero(n);
        s.run(&c);
        s
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let state = benchmark_state(Benchmark::Qft, 10);
        let path = temp_path("roundtrip");
        save(&state, &path).expect("save");
        let restored = load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.num_qubits(), 10);
        for (a, b) in state.amps().iter().zip(restored.amps().iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn compressible_states_shrink_on_disk() {
        let state = benchmark_state(Benchmark::Qaoa, 12);
        let path = temp_path("shrink");
        save(&state, &path).expect("save");
        let on_disk = std::fs::metadata(&path).expect("metadata").len();
        std::fs::remove_file(&path).ok();
        let raw = (1u64 << 12) * 16;
        assert!(on_disk < raw, "checkpoint {on_disk} B vs raw {raw} B");
    }

    #[test]
    fn in_memory_roundtrip() {
        let state = benchmark_state(Benchmark::Gs, 9);
        let mut buf = Vec::new();
        write_to(&state, &mut buf).expect("write");
        let restored = read_from(&mut buf.as_slice()).expect("read");
        assert!(restored.max_deviation(&state) < 1e-15);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_from(&mut &b"NOTASTATExxxxxxxxxxx"[..]).expect_err("bad magic");
        assert!(matches!(err, CheckpointError::Corrupt("bad magic")));
    }

    #[test]
    fn rejects_truncated_payload() {
        let state = benchmark_state(Benchmark::Bv, 8);
        let mut buf = Vec::new();
        write_to(&state, &mut buf).expect("write");
        buf.truncate(buf.len() - 7);
        assert!(read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_corrupted_body() {
        let state = benchmark_state(Benchmark::Hlf, 8);
        let mut buf = Vec::new();
        write_to(&state, &mut buf).expect("write");
        let mid = buf.len() / 2;
        buf[mid] ^= 0xff;
        // Either structural (Corrupt/Decode) or count-mismatch — but
        // never a silent wrong state.
        match read_from(&mut buf.as_slice()) {
            Err(_) => {}
            Ok(restored) => {
                // A bit flip in payload bytes decodes to different
                // amplitudes; it must not equal the original.
                assert!(restored.max_deviation(&state) > 0.0);
            }
        }
    }
}
