//! State-vector checkpointing: save and restore simulation states
//! through the same lossless [`qgpu_compress::Codec`] family the Q-GPU
//! pipeline streams through.
//!
//! Long simulations (the paper's 34-qubit runs take hours) benefit from
//! resumable checkpoints. Smooth or sparse states persist at a fraction
//! of their in-memory size, and the restore is bit-exact.
//!
//! # Format (version 3)
//!
//! ```text
//! magic "QGPUSTAT"   8 bytes
//! version            u32 LE (currently 3)
//! num_qubits         u32 LE
//! gates_done         u64 LE (program ops already applied; 0 = initial)
//! block_count        u32 LE
//! per block:         u8 codec id (see `CodecKind::id`) — the encoding
//!                    this block's bytes are in (the cascade stamps the
//!                    winning inner codec, so every block is decodable
//!                    without re-running the picker),
//!                    u64 LE value count, u32 LE segment_count,
//!                    per segment: u64 LE length, u32 LE CRC32 of the
//!                    segment bytes, then the segment bytes
//! file checksum      u32 LE CRC32 over every preceding byte
//! ```
//!
//! The state is split into contiguous amplitude blocks (the same ≥ 8
//! micro-chunks-per-segment sizing GFC uses) and each block is encoded
//! independently, so a cascade checkpoint can mix encodings — zero-run
//! for the pruned regions, GFC for the dense ones — and the per-block
//! codec id is what makes the file self-describing.
//!
//! Version 2 (whole-state GFC, per-segment CRCs, trailing file checksum)
//! and version 1 (no CRCs, no `gates_done`) are still read — old
//! checkpoints restore bit-exactly, v1 with `gates_done = 0`. The
//! per-segment CRCs localize damage (the error names the segment); the
//! trailing file checksum catches corruption in the header and framing
//! bytes the segment CRCs do not cover. Both are verified before any
//! decoded amplitude is trusted.
//!
//! # Examples
//!
//! ```no_run
//! use qgpu::checkpoint;
//! use qgpu_statevec::StateVector;
//!
//! let state = StateVector::new_zero(20);
//! checkpoint::save(&state, "run.qgpustate")?;
//! let restored = checkpoint::load("run.qgpustate")?;
//! assert_eq!(restored.num_qubits(), 20);
//! # Ok::<(), qgpu::checkpoint::CheckpointError>(())
//! ```

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use qgpu_compress::{codec_for_kind, try_decode_any, CodecKind, Encoded, GfcCodec};
use qgpu_faults::Crc32;
use qgpu_math::Complex64;
use qgpu_statevec::StateVector;

const MAGIC: &[u8; 8] = b"QGPUSTAT";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;
const VERSION_V3: u32 = 3;

/// Errors produced by checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file is not a checkpoint or is structurally damaged.
    Corrupt(&'static str),
    /// The GFC payload of a v1/v2 checkpoint failed to decode.
    Decode(qgpu_compress::gfc::DecodeGfcError),
    /// A v3 block payload failed to decode under its declared codec.
    Codec(qgpu_compress::DecodeError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Decode(e) => write!(f, "corrupt checkpoint payload: {e}"),
            CheckpointError::Codec(e) => write!(f, "corrupt checkpoint payload: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Decode(e) => Some(e),
            CheckpointError::Codec(e) => Some(e),
            CheckpointError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A restored checkpoint: the state plus how far into the program it
/// was taken (`gates_done` program ops already applied; 0 for a v1 file
/// or an initial-state snapshot).
#[derive(Debug)]
pub struct Checkpoint {
    /// The restored state vector.
    pub state: StateVector,
    /// Program ops applied before the snapshot was taken.
    pub gates_done: u64,
}

/// Forwards writes while accumulating a CRC32 of everything written —
/// how the v2 writer produces the trailing file checksum in one pass.
struct CrcWriter<'a, W: Write> {
    inner: &'a mut W,
    crc: Crc32,
}

impl<W: Write> Write for CrcWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Saves a state vector to `path`, GFC-compressed, with integrity CRCs
/// (format v3, `gates_done = 0`).
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failure.
pub fn save<P: AsRef<Path>>(state: &StateVector, path: P) -> Result<(), CheckpointError> {
    save_with_progress(state, 0, path)
}

/// Saves a mid-run snapshot: the state after `gates_done` program ops,
/// GFC-compressed.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failure.
pub fn save_with_progress<P: AsRef<Path>>(
    state: &StateVector,
    gates_done: u64,
    path: P,
) -> Result<(), CheckpointError> {
    save_with_codec(state, gates_done, CodecKind::Gfc, path)
}

/// Saves a mid-run snapshot encoded with the given codec — what the
/// engine's checkpoint middleware calls so a `--codec cascade` run
/// writes cascade-picked blocks.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failure.
pub fn save_with_codec<P: AsRef<Path>>(
    state: &StateVector,
    gates_done: u64,
    codec: CodecKind,
    path: P,
) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_checkpoint(state, gates_done, codec, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Writes a v3 checkpoint to any writer (see module docs for the format)
/// with `gates_done = 0`, GFC-compressed.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on write failure.
pub fn write_to<W: Write>(state: &StateVector, w: &mut W) -> Result<(), CheckpointError> {
    write_to_with_progress(state, 0, w)
}

/// Writes a v3 checkpoint carrying a mid-run progress marker,
/// GFC-compressed.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on write failure.
pub fn write_to_with_progress<W: Write>(
    state: &StateVector,
    gates_done: u64,
    w: &mut W,
) -> Result<(), CheckpointError> {
    write_checkpoint(state, gates_done, CodecKind::Gfc, w)
}

/// Writes a v3 checkpoint: the state split into blocks, each encoded
/// independently with `codec` and stamped with the id of the encoding
/// its bytes are actually in (for the cascade, the per-block winner).
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on write failure.
pub fn write_checkpoint<W: Write>(
    state: &StateVector,
    gates_done: u64,
    codec: CodecKind,
    w: &mut W,
) -> Result<(), CheckpointError> {
    let amps = state.amps();
    // Blocks small enough that one damaged block localizes, but never so
    // small that GFC degrades to history-less micro-chunks; the inner
    // codec runs with a single segment because the block IS the segment.
    let block_len = amps.len().div_ceil(block_count_for(state.num_qubits()));
    let enc = codec_for_kind(codec, 1);
    let blocks: Vec<&[Complex64]> = amps.chunks(block_len.max(1)).collect();
    let mut cw = CrcWriter {
        inner: w,
        crc: Crc32::new(),
    };
    cw.write_all(MAGIC)?;
    cw.write_all(&VERSION_V3.to_le_bytes())?;
    cw.write_all(&(state.num_qubits() as u32).to_le_bytes())?;
    cw.write_all(&gates_done.to_le_bytes())?;
    cw.write_all(&(blocks.len() as u32).to_le_bytes())?;
    for block in blocks {
        let e = enc.encode_amplitudes(block);
        cw.write_all(&[e.codec().id()])?;
        cw.write_all(&(e.num_values() as u64).to_le_bytes())?;
        cw.write_all(&(e.num_segments() as u32).to_le_bytes())?;
        for i in 0..e.num_segments() {
            let seg = e.segment(i);
            cw.write_all(&(seg.len() as u64).to_le_bytes())?;
            cw.write_all(&qgpu_faults::crc32(seg).to_le_bytes())?;
            cw.write_all(seg)?;
        }
    }
    let file_crc = cw.crc.finish();
    cw.inner.write_all(&file_crc.to_le_bytes())?;
    Ok(())
}

/// Loads a state vector from `path` (either format version).
///
/// # Errors
///
/// Returns [`CheckpointError`] for I/O failures, structural corruption,
/// CRC mismatches, or undecodable payloads.
pub fn load<P: AsRef<Path>>(path: P) -> Result<StateVector, CheckpointError> {
    Ok(load_with_progress(path)?.state)
}

/// Loads a checkpoint plus its progress marker from `path`.
///
/// # Errors
///
/// See [`load`].
pub fn load_with_progress<P: AsRef<Path>>(path: P) -> Result<Checkpoint, CheckpointError> {
    read_checkpoint(&mut BufReader::new(File::open(path)?))
}

/// Reads a checkpoint from any reader, discarding the progress marker.
///
/// # Errors
///
/// See [`load`].
pub fn read_from<R: Read>(r: &mut R) -> Result<StateVector, CheckpointError> {
    Ok(read_checkpoint(r)?.state)
}

/// Accumulates a CRC32 of every byte read — the v2 reader's running
/// checksum, compared against the file trailer after the last segment.
struct CrcReader<'a, R: Read> {
    inner: &'a mut R,
    crc: Crc32,
}

impl<R: Read> CrcReader<'_, R> {
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), CheckpointError> {
        self.inner.read_exact(buf)?;
        self.crc.update(buf);
        Ok(())
    }

    fn read_u32(&mut self) -> Result<u32, CheckpointError> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u64(&mut self) -> Result<u64, CheckpointError> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
}

/// Reads a checkpoint (v1, v2, or v3) from any reader.
///
/// # Errors
///
/// See [`load`].
pub fn read_checkpoint<R: Read>(r: &mut R) -> Result<Checkpoint, CheckpointError> {
    let mut cr = CrcReader {
        inner: r,
        crc: Crc32::new(),
    };
    let mut magic = [0u8; 8];
    cr.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic"));
    }
    let version = cr.read_u32()?;
    if !(VERSION_V1..=VERSION_V3).contains(&version) {
        return Err(CheckpointError::Corrupt("unsupported version"));
    }
    let num_qubits = cr.read_u32()? as usize;
    if num_qubits == 0 || num_qubits >= 48 {
        return Err(CheckpointError::Corrupt("implausible qubit count"));
    }
    let gates_done = if version >= VERSION_V2 {
        cr.read_u64()?
    } else {
        0
    };
    let amps = if version >= VERSION_V3 {
        read_v3_blocks(&mut cr, num_qubits)?
    } else {
        read_legacy_segments(&mut cr, num_qubits, version)?
    };
    if version >= VERSION_V2 {
        let computed = cr.crc.finish();
        let mut trailer = [0u8; 4];
        cr.inner.read_exact(&mut trailer)?;
        if u32::from_le_bytes(trailer) != computed {
            return Err(CheckpointError::Corrupt("file checksum mismatch"));
        }
    }
    if amps.len() != 1usize << num_qubits {
        return Err(CheckpointError::Corrupt("amplitude count mismatch"));
    }
    Ok(Checkpoint {
        state: StateVector::from_amplitudes(amps),
        gates_done,
    })
}

/// Reads the v3 block list: each block names its own codec and decodes
/// independently through the codec-agnostic dispatcher.
fn read_v3_blocks<R: Read>(
    cr: &mut CrcReader<'_, R>,
    num_qubits: usize,
) -> Result<Vec<Complex64>, CheckpointError> {
    let block_count = cr.read_u32()? as usize;
    if block_count == 0 || block_count > 1 << 20 {
        return Err(CheckpointError::Corrupt("implausible block count"));
    }
    let total = 1usize << num_qubits;
    let mut amps: Vec<Complex64> = Vec::with_capacity(total);
    for _ in 0..block_count {
        let mut id = [0u8; 1];
        cr.read_exact(&mut id)?;
        let kind = CodecKind::from_id(id[0]).ok_or(CheckpointError::Corrupt("unknown codec id"))?;
        let num_values = cr.read_u64()? as usize;
        if !num_values.is_multiple_of(2) || num_values > total * 2 {
            return Err(CheckpointError::Corrupt("implausible block value count"));
        }
        let segment_count = cr.read_u32()? as usize;
        if segment_count == 0 || segment_count > 1 << 20 {
            return Err(CheckpointError::Corrupt("implausible segment count"));
        }
        let mut segments = Vec::with_capacity(segment_count);
        for _ in 0..segment_count {
            let len = cr.read_u64()? as usize;
            if len > total * 20 + 64 {
                return Err(CheckpointError::Corrupt("implausible segment length"));
            }
            let expected = cr.read_u32()?;
            let mut seg = vec![0u8; len];
            cr.read_exact(&mut seg)?;
            if qgpu_faults::crc32(&seg) != expected {
                return Err(CheckpointError::Corrupt("segment CRC mismatch"));
            }
            segments.push(seg);
        }
        let enc = Encoded::from_parts(kind, num_values, segments);
        let values = try_decode_any(&enc).map_err(CheckpointError::Codec)?;
        if values.len() != num_values {
            return Err(CheckpointError::Corrupt("block value count mismatch"));
        }
        amps.extend(values.chunks_exact(2).map(|p| Complex64::new(p[0], p[1])));
        if amps.len() > total {
            return Err(CheckpointError::Corrupt("amplitude count mismatch"));
        }
    }
    Ok(amps)
}

/// Reads the v1/v2 whole-state GFC segment list.
fn read_legacy_segments<R: Read>(
    cr: &mut CrcReader<'_, R>,
    num_qubits: usize,
    version: u32,
) -> Result<Vec<Complex64>, CheckpointError> {
    let segment_count = cr.read_u32()? as usize;
    if segment_count == 0 || segment_count > 1 << 20 {
        return Err(CheckpointError::Corrupt("implausible segment count"));
    }
    let mut segments = Vec::with_capacity(segment_count);
    for _ in 0..segment_count {
        let len = cr.read_u64()? as usize;
        if len > (1usize << num_qubits) * 20 + 64 {
            return Err(CheckpointError::Corrupt("implausible segment length"));
        }
        let seg_crc = if version >= VERSION_V2 {
            Some(cr.read_u32()?)
        } else {
            None
        };
        let mut seg = vec![0u8; len];
        cr.read_exact(&mut seg)?;
        if let Some(expected) = seg_crc {
            if qgpu_faults::crc32(&seg) != expected {
                return Err(CheckpointError::Corrupt("segment CRC mismatch"));
            }
        }
        segments.push(seg);
    }
    let compressed = qgpu_compress::Compressed::from_parts(1usize << (num_qubits + 1), segments);
    let codec = codec_for(num_qubits);
    codec
        .try_decompress_amplitudes(&compressed)
        .map_err(CheckpointError::Decode)
}

/// Block/segment count scaled to the state (≥ 8 micro-chunks per
/// segment) — shared by the v3 block split and the legacy v1/v2 GFC
/// segmenting.
fn block_count_for(num_qubits: usize) -> usize {
    let doubles = 2usize << num_qubits;
    (doubles / 256).clamp(1, 64)
}

/// The legacy whole-state GFC codec for v1/v2 reads.
fn codec_for(num_qubits: usize) -> GfcCodec {
    GfcCodec::new(block_count_for(num_qubits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgpu_circuit::generators::Benchmark;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("qgpu-ckpt-{tag}-{}", std::process::id()))
    }

    fn benchmark_state(b: Benchmark, n: usize) -> StateVector {
        let c = b.generate(n);
        let mut s = StateVector::new_zero(n);
        s.run(&c);
        s
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let state = benchmark_state(Benchmark::Qft, 10);
        let path = temp_path("roundtrip");
        save(&state, &path).expect("save");
        let restored = load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.num_qubits(), 10);
        for (a, b) in state.amps().iter().zip(restored.amps().iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn compressible_states_shrink_on_disk() {
        let state = benchmark_state(Benchmark::Qaoa, 12);
        let path = temp_path("shrink");
        save(&state, &path).expect("save");
        let on_disk = std::fs::metadata(&path).expect("metadata").len();
        std::fs::remove_file(&path).ok();
        let raw = (1u64 << 12) * 16;
        assert!(on_disk < raw, "checkpoint {on_disk} B vs raw {raw} B");
    }

    #[test]
    fn in_memory_roundtrip() {
        let state = benchmark_state(Benchmark::Gs, 9);
        let mut buf = Vec::new();
        write_to(&state, &mut buf).expect("write");
        let restored = read_from(&mut buf.as_slice()).expect("read");
        assert!(restored.max_deviation(&state) < 1e-15);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_from(&mut &b"NOTASTATExxxxxxxxxxx"[..]).expect_err("bad magic");
        assert!(matches!(err, CheckpointError::Corrupt("bad magic")));
    }

    #[test]
    fn rejects_truncated_payload() {
        let state = benchmark_state(Benchmark::Bv, 8);
        let mut buf = Vec::new();
        write_to(&state, &mut buf).expect("write");
        buf.truncate(buf.len() - 7);
        assert!(read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_corrupted_body() {
        let state = benchmark_state(Benchmark::Hlf, 8);
        let mut buf = Vec::new();
        write_to(&state, &mut buf).expect("write");
        let mid = buf.len() / 2;
        buf[mid] ^= 0xff;
        // v2 CRCs make this unconditional: any payload bit flip is
        // caught, never a silently different state.
        assert!(read_from(&mut buf.as_slice()).is_err());
    }

    /// Writes the legacy v1 layout (no gates_done, no CRCs) byte by
    /// byte — the compatibility fixture for the v1 read path.
    fn write_v1(state: &StateVector, w: &mut Vec<u8>) {
        let codec = codec_for(state.num_qubits());
        let compressed = codec.compress_amplitudes(state.amps());
        w.extend_from_slice(MAGIC);
        w.extend_from_slice(&VERSION_V1.to_le_bytes());
        w.extend_from_slice(&(state.num_qubits() as u32).to_le_bytes());
        w.extend_from_slice(&(compressed.num_segments() as u32).to_le_bytes());
        for i in 0..compressed.num_segments() {
            let seg = compressed.segment(i);
            w.extend_from_slice(&(seg.len() as u64).to_le_bytes());
            w.extend_from_slice(seg);
        }
    }

    /// Writes the legacy v2 layout (whole-state GFC, per-segment CRCs,
    /// trailing file checksum) — the compatibility fixture for the v2
    /// read path, byte-identical to what the previous writer produced.
    fn write_v2(state: &StateVector, gates_done: u64, w: &mut Vec<u8>) {
        let codec = codec_for(state.num_qubits());
        let compressed = codec.compress_amplitudes(state.amps());
        let mut cw = CrcWriter {
            inner: w,
            crc: Crc32::new(),
        };
        cw.write_all(MAGIC).expect("vec write");
        cw.write_all(&VERSION_V2.to_le_bytes()).expect("vec write");
        cw.write_all(&(state.num_qubits() as u32).to_le_bytes())
            .expect("vec write");
        cw.write_all(&gates_done.to_le_bytes()).expect("vec write");
        cw.write_all(&(compressed.num_segments() as u32).to_le_bytes())
            .expect("vec write");
        for i in 0..compressed.num_segments() {
            let seg = compressed.segment(i);
            cw.write_all(&(seg.len() as u64).to_le_bytes())
                .expect("vec write");
            cw.write_all(&qgpu_faults::crc32(seg).to_le_bytes())
                .expect("vec write");
            cw.write_all(seg).expect("vec write");
        }
        let file_crc = cw.crc.finish();
        cw.inner
            .write_all(&file_crc.to_le_bytes())
            .expect("vec write");
    }

    #[test]
    fn still_reads_version_1_files() {
        let state = benchmark_state(Benchmark::Qft, 9);
        let mut buf = Vec::new();
        write_v1(&state, &mut buf);
        let ckpt = read_checkpoint(&mut buf.as_slice()).expect("v1 read");
        assert_eq!(ckpt.gates_done, 0, "v1 has no progress marker");
        for (a, b) in state.amps().iter().zip(ckpt.state.amps().iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn mixed_versions_restore_the_same_state() {
        // One state written in every format generation the reader
        // supports: all three must restore bit-identically, and v2/v3
        // must carry the progress marker through.
        let state = benchmark_state(Benchmark::Qft, 9);
        let mut v1 = Vec::new();
        write_v1(&state, &mut v1);
        let mut v2 = Vec::new();
        write_v2(&state, 21, &mut v2);
        let mut v3 = Vec::new();
        write_checkpoint(&state, 21, CodecKind::Gfc, &mut v3).expect("v3 write");
        for (label, buf, gates) in [("v1", &v1, 0), ("v2", &v2, 21), ("v3", &v3, 21)] {
            let ckpt = read_checkpoint(&mut buf.as_slice()).expect(label);
            assert_eq!(ckpt.gates_done, gates, "{label} progress marker");
            for (a, b) in state.amps().iter().zip(ckpt.state.amps().iter()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "{label} re");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "{label} im");
            }
        }
    }

    #[test]
    fn every_codec_roundtrips_a_checkpoint() {
        let state = benchmark_state(Benchmark::Iqp, 10);
        for kind in CodecKind::ALL {
            let mut buf = Vec::new();
            write_checkpoint(&state, 7, kind, &mut buf).expect("write");
            let ckpt = read_checkpoint(&mut buf.as_slice()).expect("read");
            assert_eq!(ckpt.gates_done, 7);
            for (a, b) in state.amps().iter().zip(ckpt.state.amps().iter()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "codec {kind}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "codec {kind}");
            }
        }
    }

    #[test]
    fn cascade_checkpoints_mix_codec_ids_on_sparse_states() {
        // A freshly-zeroed state touched by a handful of gates is mostly
        // zero blocks: the cascade must stamp zero-run on those, never
        // its own id, and the file must undercut the all-GFC encoding.
        let c = Benchmark::Bv.generate(12);
        let mut s = StateVector::new_zero(12);
        s.run(&c);
        let mut cascade_buf = Vec::new();
        write_checkpoint(&s, 0, CodecKind::Cascade, &mut cascade_buf).expect("write");
        let mut gfc_buf = Vec::new();
        write_checkpoint(&s, 0, CodecKind::Gfc, &mut gfc_buf).expect("write");
        assert!(
            cascade_buf.len() <= gfc_buf.len(),
            "cascade {} B vs gfc {} B",
            cascade_buf.len(),
            gfc_buf.len()
        );
        // Walk the block headers: ids must all be inner codecs.
        let ids = block_ids(&cascade_buf);
        assert!(!ids.is_empty());
        assert!(
            ids.iter().all(|&id| id != CodecKind::Cascade.id()),
            "cascade id leaked to disk: {ids:?}"
        );
        let restored = read_from(&mut cascade_buf.as_slice()).expect("read");
        assert_eq!(restored.max_deviation(&s), 0.0);
    }

    /// Extracts the per-block codec ids from a v3 buffer.
    fn block_ids(buf: &[u8]) -> Vec<u8> {
        let mut ids = Vec::new();
        let mut pos = 8 + 4 + 4 + 8; // magic, version, qubits, gates_done
        let block_count = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("u32")) as usize;
        pos += 4;
        for _ in 0..block_count {
            ids.push(buf[pos]);
            pos += 1 + 8; // id, num_values
            let segs = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("u32")) as usize;
            pos += 4;
            for _ in 0..segs {
                let len = u64::from_le_bytes(buf[pos..pos + 8].try_into().expect("u64")) as usize;
                pos += 8 + 4 + len; // len, crc, payload
            }
        }
        ids
    }

    #[test]
    fn progress_marker_roundtrips() {
        let state = benchmark_state(Benchmark::Qaoa, 9);
        let path = temp_path("progress");
        save_with_progress(&state, 137, &path).expect("save");
        let ckpt = load_with_progress(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(ckpt.gates_done, 137);
        assert!(ckpt.state.max_deviation(&state) == 0.0);
    }

    #[test]
    fn v2_truncation_is_caught_at_every_cut() {
        let state = benchmark_state(Benchmark::Gs, 8);
        let mut buf = Vec::new();
        write_to_with_progress(&state, 5, &mut buf).expect("write");
        // Chop at a spread of positions, including mid-trailer: all must
        // error (Io on short reads, Corrupt on checksum damage).
        for cut in [0, 7, 11, 13, buf.len() / 3, buf.len() / 2, buf.len() - 2] {
            let mut short = buf.clone();
            short.truncate(cut);
            assert!(
                read_checkpoint(&mut short.as_slice()).is_err(),
                "truncation at {cut} slipped through"
            );
        }
    }

    #[test]
    fn v2_single_bit_flips_are_caught_everywhere() {
        let state = benchmark_state(Benchmark::Hchain, 8);
        let mut buf = Vec::new();
        write_to_with_progress(&state, 9, &mut buf).expect("write");
        // Flip one bit at a sweep of offsets covering the header, the
        // progress marker, segment framing, payload, and the trailer.
        for pos in (0..buf.len()).step_by(13).chain([buf.len() - 1]) {
            let mut bad = buf.clone();
            bad[pos] ^= 0x10;
            assert!(
                read_checkpoint(&mut bad.as_slice()).is_err(),
                "bit flip at byte {pos} slipped through"
            );
        }
    }
}
