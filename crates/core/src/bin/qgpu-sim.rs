//! `qgpu-sim` — simulate an OpenQASM 2.0 circuit (or a built-in
//! benchmark) through the Q-GPU pipeline.
//!
//! ```text
//! qgpu-sim circuit.qasm [options]
//! qgpu-sim --benchmark qft --qubits 16 [options]
//!
//! options:
//!   --version <baseline|naive|overlap|pruning|reorder|qgpu>   (default qgpu)
//!   --opts <list>      run an explicit optimization subset instead of a
//!                      named version: a +-separated list drawn from
//!                      {overlap, pruning, reorder, compression}, or
//!                      "none"/"all" (e.g. --opts pruning+compression)
//!   --codec <gfc|zero-run|alp|cascade>   compression codec for chunks
//!                      moving over the link (default gfc; cascade
//!                      samples each chunk and picks the best codec)
//!   --shots <N>        draw N seeded end-of-circuit shots (default 0)
//!   --sample           print the sampled counts (with --shots)
//!   --seed <N>         stochastic seed: noise sites, mid-circuit
//!                      collapse, and shot sampling (default 1)
//!   --noise <spec>     per-gate noise channels, e.g.
//!                      "depolarizing:0.01,loss:0.001" (channels:
//!                      depolarizing, bit_flip, phase_flip, loss)
//!   --chunks <log2>    chunk-count exponent (default 8)
//!   --platform <p100|v100|a100|4xp4|4xv100>   modeled platform (default p100)
//!   --devices <N>      replicate device 0 into an N-GPU fleet
//!   --top <N>          print the N most likely basis states (default 8)
//!   --batching         enable the gate-batching extension
//!   --fuse             enable the gate-fusion pass
//!   --threads <N>      functional worker threads (default 1)
//!   --peephole         run the peephole optimizer before simulating
//!   --cx-basis         transpile to the {1-qubit, CX} basis first
//!   --report           print the modeled execution report
//!   --report-json <path>  write the modeled execution report as JSON
//!   --save <path>      write the final state as a compressed checkpoint
//!   --trace-out <path> write a two-track Chrome/Perfetto trace JSON
//!   --metrics-out <path>  write recorded counters/histograms as JSON
//!                      (with a `meta` run-provenance block and the
//!                      labeled `registry` of per-stage histograms)
//!   --flight-out <path>  always dump the flight-recorder event ring to
//!                      JSON at <path> after the run. Any fault-injection
//!                      run arms the recorder automatically and dumps to
//!                      `qgpu-flight.json` when a retry/fallback/loss
//!                      trigger fires, even without this flag.
//!   --drift            print the modeled-vs-measured drift report
//!   --drift-tol <pp>   drift flagging tolerance in percentage points
//!   --gantt            print the modeled timeline as an ASCII Gantt chart
//!
//! fault injection & resilience:
//!   --inject-seed <N>      fault injector seed (default 0)
//!   --inject-transfer <P>  per-transfer corruption probability
//!   --inject-codec <P>     per-encode codec failure probability
//!   --inject-mask <P>      per-op involvement-mask corruption probability
//!   --inject-worker <P>    per-worker death probability
//!   --inject-fail-at <N>   abort with a fatal fault at program op N
//!   --verify-invariants    run the ABFT invariant checks (per-chunk
//!                          norms, diagonal magnitudes, zero blocks, and
//!                          the whole-state norm gate before readout)
//!   --inject-kernel-flip <OP[:COUNT[:ATTEMPTS[:BIT]]]>
//!                          XOR one amplitude bit inside kernel output at
//!                          program op OP (and the COUNT-1 following ops);
//!                          ATTEMPTS > 1 makes the fault sticky across
//!                          that many re-executions, BIT picks the flipped
//!                          bit (default 62, the exponent MSB). Arms the
//!                          invariant checks and repair automatically.
//!   --inject-device-loss <D:OP>  lose device D at program op OP
//!   --inject-link-degrade <P>    per-transfer link degradation probability
//!   --inject-straggler <D[:F]>   pin device D as a persistent straggler,
//!                                optionally stretched by factor F (default 4)
//!   --mem-budget <BYTES>   per-device chunk-residency budget (enables the
//!                          memory-pressure governor)
//!   --checkpoint-every <N> write a checkpoint every N program ops
//!   --checkpoint-out <p>   checkpoint path (with --checkpoint-every)
//!   --resume <path>        resume from a checkpoint written by --checkpoint-out
//!   --compare <path>       after the run, compare the final state against a
//!                          checkpoint; exit nonzero beyond 1e-12 deviation
//! ```

use std::env;
use std::fs;
use std::process::ExitCode;

use qgpu::{
    CodecKind, FaultConfig, FlightConfig, OptFlags, SimConfig, SimError, Simulator, Version,
};
use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::{qasm, Circuit, NoiseConfig};
use qgpu_device::Platform;

struct Options {
    source: Source,
    version: Version,
    opts: Option<OptFlags>,
    codec: Option<CodecKind>,
    shots: u64,
    sample: bool,
    noise: Option<NoiseConfig>,
    seed: u64,
    chunks_log2: u32,
    top: usize,
    batching: bool,
    fuse: bool,
    threads: usize,
    report: bool,
    report_json: Option<String>,
    save: Option<String>,
    platform: String,
    devices: usize,
    mem_budget: Option<u64>,
    peephole: bool,
    cx_basis: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    flight_out: Option<String>,
    drift: bool,
    drift_tol: f64,
    gantt: bool,
    faults: FaultConfig,
    verify_invariants: bool,
    checkpoint_every: u64,
    checkpoint_out: Option<String>,
    resume: Option<String>,
    compare: Option<String>,
}

enum Source {
    File(String),
    Benchmark { name: String, qubits: usize },
}

fn parse_version(s: &str) -> Result<Version, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "baseline" => Version::Baseline,
        "naive" => Version::Naive,
        "overlap" => Version::Overlap,
        "pruning" => Version::Pruning,
        "reorder" => Version::Reorder,
        "qgpu" | "q-gpu" => Version::QGpu,
        other => return Err(format!("unknown version '{other}'")),
    })
}

fn parse_args() -> Result<Options, String> {
    let mut args = env::args().skip(1).peekable();
    let mut file = None;
    let mut benchmark = None;
    let mut qubits = None;
    let mut version = Version::QGpu;
    let mut opts = None;
    let mut codec = None;
    let mut shots = 0u64;
    let mut sample = false;
    let mut noise = None;
    let mut seed = 1u64;
    let mut chunks_log2 = 8u32;
    let mut top = 8usize;
    let mut batching = false;
    let mut fuse = false;
    let mut threads = 1usize;
    let mut report = false;
    let mut report_json = None;
    let mut save = None;
    let mut platform = "p100".to_string();
    let mut devices = 1usize;
    let mut mem_budget = None;
    let mut peephole = false;
    let mut cx_basis = false;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut flight_out = None;
    let mut drift = false;
    let mut drift_tol = qgpu_obs::drift::DEFAULT_TOLERANCE_PP;
    let mut gantt = false;
    let mut faults = FaultConfig::default();
    let mut verify_invariants = false;
    let mut checkpoint_every = 0u64;
    let mut checkpoint_out = None;
    let mut resume = None;
    let mut compare = None;

    let take = |args: &mut std::iter::Peekable<std::iter::Skip<env::Args>>,
                flag: &str|
     -> Result<String, String> {
        args.next().ok_or(format!("missing value after {flag}"))
    };

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--benchmark" | "-b" => benchmark = Some(take(&mut args, "--benchmark")?),
            "--qubits" | "-q" => {
                qubits = Some(
                    take(&mut args, "--qubits")?
                        .parse()
                        .map_err(|_| "bad qubit count")?,
                )
            }
            "--version" | "-v" => version = parse_version(&take(&mut args, "--version")?)?,
            "--opts" => opts = Some(OptFlags::parse(&take(&mut args, "--opts")?)?),
            "--codec" => codec = Some(take(&mut args, "--codec")?.parse::<CodecKind>()?),
            "--shots" => {
                shots = take(&mut args, "--shots")?
                    .parse()
                    .map_err(|_| "bad shots")?
            }
            "--sample" => sample = true,
            "--noise" => noise = Some(take(&mut args, "--noise")?.parse::<NoiseConfig>()?),
            "--seed" => seed = take(&mut args, "--seed")?.parse().map_err(|_| "bad seed")?,
            "--chunks" => {
                chunks_log2 = take(&mut args, "--chunks")?
                    .parse()
                    .map_err(|_| "bad chunks")?
            }
            "--top" => top = take(&mut args, "--top")?.parse().map_err(|_| "bad top")?,
            "--batching" => batching = true,
            "--fuse" => fuse = true,
            "--threads" => {
                threads = take(&mut args, "--threads")?
                    .parse()
                    .map_err(|_| "bad thread count")?;
                if threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--report" | "-r" => report = true,
            "--report-json" => report_json = Some(take(&mut args, "--report-json")?),
            "--save" => save = Some(take(&mut args, "--save")?),
            "--platform" | "-p" => platform = take(&mut args, "--platform")?,
            "--devices" => {
                devices = take(&mut args, "--devices")?
                    .parse()
                    .map_err(|_| "bad device count")?;
                if devices == 0 {
                    return Err("--devices must be at least 1".into());
                }
            }
            "--mem-budget" => {
                mem_budget = Some(
                    take(&mut args, "--mem-budget")?
                        .parse()
                        .map_err(|_| "bad memory budget")?,
                )
            }
            "--peephole" => peephole = true,
            "--cx-basis" => cx_basis = true,
            "--trace-out" => trace_out = Some(take(&mut args, "--trace-out")?),
            "--metrics-out" => metrics_out = Some(take(&mut args, "--metrics-out")?),
            "--flight-out" => flight_out = Some(take(&mut args, "--flight-out")?),
            "--drift" => drift = true,
            "--drift-tol" => {
                drift_tol = take(&mut args, "--drift-tol")?
                    .parse()
                    .map_err(|_| "bad drift tolerance")?
            }
            "--gantt" => gantt = true,
            "--inject-seed" => {
                faults.seed = take(&mut args, "--inject-seed")?
                    .parse()
                    .map_err(|_| "bad injection seed")?
            }
            "--inject-transfer" => {
                faults.p_transfer_corrupt = take(&mut args, "--inject-transfer")?
                    .parse()
                    .map_err(|_| "bad transfer corruption probability")?
            }
            "--inject-codec" => {
                faults.p_codec_fail = take(&mut args, "--inject-codec")?
                    .parse()
                    .map_err(|_| "bad codec failure probability")?
            }
            "--inject-mask" => {
                faults.p_mask_corrupt = take(&mut args, "--inject-mask")?
                    .parse()
                    .map_err(|_| "bad mask corruption probability")?
            }
            "--inject-worker" => {
                faults.p_worker_death = take(&mut args, "--inject-worker")?
                    .parse()
                    .map_err(|_| "bad worker death probability")?
            }
            "--inject-fail-at" => {
                faults.fail_at_gate = take(&mut args, "--inject-fail-at")?
                    .parse()
                    .map_err(|_| "bad fatal fault op index")?
            }
            "--inject-device-loss" => {
                let spec = take(&mut args, "--inject-device-loss")?;
                let (d, op) = spec
                    .split_once(':')
                    .ok_or("--inject-device-loss wants D:OP (device:program-op)")?;
                faults.device_lost_id = d.parse().map_err(|_| "bad device id")?;
                faults.device_lost_at = op.parse().map_err(|_| "bad device-loss op index")?;
            }
            "--verify-invariants" => verify_invariants = true,
            "--inject-kernel-flip" => {
                let spec = take(&mut args, "--inject-kernel-flip")?;
                let mut parts = spec.split(':');
                faults.kernel_flip_at = parts
                    .next()
                    .unwrap_or_default()
                    .parse()
                    .map_err(|_| "bad kernel-flip op index")?;
                if let Some(c) = parts.next() {
                    faults.kernel_flip_count = c.parse().map_err(|_| "bad kernel-flip op count")?;
                }
                if let Some(a) = parts.next() {
                    faults.kernel_flip_attempts =
                        a.parse().map_err(|_| "bad kernel-flip attempt count")?;
                }
                if let Some(b) = parts.next() {
                    faults.kernel_flip_bit = b.parse().map_err(|_| "bad kernel-flip bit")?;
                    if faults.kernel_flip_bit > 63 {
                        return Err("kernel-flip bit must be 0..=63".into());
                    }
                }
                if parts.next().is_some() {
                    return Err("--inject-kernel-flip wants OP[:COUNT[:ATTEMPTS[:BIT]]]".into());
                }
            }
            "--inject-link-degrade" => {
                faults.p_link_degraded = take(&mut args, "--inject-link-degrade")?
                    .parse()
                    .map_err(|_| "bad link degradation probability")?
            }
            "--inject-straggler" => {
                let spec = take(&mut args, "--inject-straggler")?;
                let (dev, factor) = match spec.split_once(':') {
                    Some((d, f)) => (d.to_string(), Some(f.to_string())),
                    None => (spec, None),
                };
                faults.straggler_device = dev.parse().map_err(|_| "bad straggler device id")?;
                if let Some(f) = factor {
                    faults.slowdown_factor =
                        f.parse().map_err(|_| "bad straggler slowdown factor")?;
                    if faults.slowdown_factor <= 1.0 {
                        return Err("straggler slowdown factor must exceed 1".into());
                    }
                }
            }
            "--checkpoint-every" => {
                checkpoint_every = take(&mut args, "--checkpoint-every")?
                    .parse()
                    .map_err(|_| "bad checkpoint interval")?;
                if checkpoint_every == 0 {
                    return Err("--checkpoint-every must be at least 1".into());
                }
            }
            "--checkpoint-out" => checkpoint_out = Some(take(&mut args, "--checkpoint-out")?),
            "--resume" => resume = Some(take(&mut args, "--resume")?),
            "--compare" => compare = Some(take(&mut args, "--compare")?),
            "--help" | "-h" => return Err(HELP.to_string()),
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{HELP}")),
        }
    }
    let source = match (file, benchmark) {
        (Some(f), None) => Source::File(f),
        (None, Some(name)) => Source::Benchmark {
            name,
            qubits: qubits.ok_or("--benchmark requires --qubits")?,
        },
        (Some(_), Some(_)) => return Err("give either a file or --benchmark, not both".into()),
        (None, None) => return Err(HELP.to_string()),
    };
    if sample && shots == 0 {
        return Err("--sample requires --shots".into());
    }
    Ok(Options {
        source,
        version,
        opts,
        codec,
        shots,
        sample,
        noise,
        seed,
        chunks_log2,
        top,
        batching,
        fuse,
        threads,
        report,
        report_json,
        save,
        platform,
        devices,
        mem_budget,
        peephole,
        cx_basis,
        trace_out,
        metrics_out,
        flight_out,
        drift,
        drift_tol,
        gantt,
        faults,
        verify_invariants,
        checkpoint_every,
        checkpoint_out,
        resume,
        compare,
    })
}

const HELP: &str = "usage: qgpu-sim <file.qasm> | --benchmark <name> --qubits <N>\n  [--version baseline|naive|overlap|pruning|reorder|qgpu] [--opts list]\n  [--codec gfc|zero-run|alp|cascade] [--shots N]\n  [--sample] [--noise spec] [--seed N] [--chunks log2] [--top N] [--batching] [--fuse] [--threads N]\n  [--report] [--report-json path] [--save path] [--trace-out path] [--metrics-out path]\n  [--flight-out path]\n  [--drift] [--drift-tol pp] [--gantt] [--devices N] [--mem-budget BYTES]\n  [--inject-seed N] [--inject-transfer P] [--inject-codec P]\n  [--inject-mask P] [--inject-worker P] [--inject-fail-at N]\n  [--inject-device-loss D:OP] [--inject-link-degrade P]\n  [--inject-straggler D[:FACTOR]]\n  [--verify-invariants] [--inject-kernel-flip OP[:COUNT[:ATTEMPTS[:BIT]]]]\n  [--checkpoint-every N] [--checkpoint-out path] [--resume path]\n  [--compare path]";

fn platform_for(name: &str, qubits: usize) -> Result<Platform, String> {
    let ratio = 496.0 / 8192.0;
    Ok(match name {
        "p100" => Platform::scaled_paper_p100(qubits),
        "v100" => Platform::paper_v100().miniaturize(qubits, 0.10),
        "a100" => Platform::paper_a100().miniaturize(qubits, 0.45),
        "4xp4" => Platform::quad_p4_pcie().miniaturize(qubits, ratio / 4.0),
        "4xv100" => Platform::quad_v100_nvlink().miniaturize(qubits, ratio / 4.0),
        other => return Err(format!("unknown platform '{other}'")),
    })
}

fn load_circuit(source: &Source) -> Result<Circuit, String> {
    match source {
        Source::File(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            qasm::parse(&text).map_err(|e| e.to_string())
        }
        Source::Benchmark { name, qubits } => {
            let b = Benchmark::from_abbrev(name)
                .ok_or(format!("unknown benchmark '{name}' (try qft, iqp, gs, …)"))?;
            Ok(b.generate(*qubits))
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut circuit = match load_circuit(&opts.source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.cx_basis {
        let before = circuit.len();
        circuit = qgpu_circuit::transpile::to_cx_basis(&circuit);
        eprintln!("[qgpu-sim] cx-basis: {before} -> {} ops", circuit.len());
    }
    if opts.peephole {
        let before = circuit.len();
        circuit = qgpu_circuit::transpile::peephole(&circuit);
        eprintln!("[qgpu-sim] peephole: {before} -> {} ops", circuit.len());
    }
    let n = circuit.num_qubits();
    match opts.opts {
        Some(f) => eprintln!("[qgpu-sim] {} qubits, {} ops, opts {}", n, circuit.len(), f),
        None => eprintln!(
            "[qgpu-sim] {} qubits, {} ops, version {}",
            n,
            circuit.len(),
            opts.version
        ),
    }

    let mut platform = match platform_for(&opts.platform, n) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.devices > 1 {
        platform = platform.with_devices(opts.devices);
        eprintln!(
            "[qgpu-sim] fleet: {} devices ({})",
            opts.devices, platform.name
        );
    }
    let mut config = SimConfig::new(platform)
        .with_version(opts.version)
        .with_chunk_count_log2(opts.chunks_log2);
    if let Some(f) = opts.opts {
        config = config.with_opts(f);
    }
    if let Some(k) = opts.codec {
        config = config.with_codec(k);
        if config.codec() == k {
            eprintln!("[qgpu-sim] codec: {k}");
        } else {
            // The baseline's static allocation never moves chunks over
            // the link, so there is nothing to compress.
            eprintln!("[qgpu-sim] codec: {k} ignored (baseline does not stream chunks)");
        }
    }
    if opts.batching {
        config = config.with_gate_batching();
    }
    if opts.fuse {
        config = config.with_gate_fusion();
    }
    config = config.with_threads(opts.threads);
    config = config.with_shots(opts.shots).with_stoch_seed(opts.seed);
    if let Some(nc) = opts.noise {
        config = config.with_noise(nc);
        eprintln!(
            "[qgpu-sim] noise on (seed {}): depolarizing {}, bit_flip {}, phase_flip {}, loss {}",
            opts.seed, nc.depolarizing, nc.bit_flip, nc.phase_flip, nc.loss
        );
    }
    if let Some(bytes) = opts.mem_budget {
        config = config.with_mem_budget(bytes);
        eprintln!("[qgpu-sim] memory-pressure governor: {bytes} bytes per device");
    }
    if opts.trace_out.is_some() || opts.metrics_out.is_some() || opts.drift {
        config = config.with_obs_spans();
    }
    if opts.trace_out.is_some() || opts.gantt {
        // Bounded modeled track: ~30 MB of trace JSON at most, which
        // Perfetto loads comfortably; million-chunk runs truncate.
        config = config.with_trace(200_000);
    }
    if opts.faults.any_enabled() {
        config = config.with_faults(opts.faults);
        eprintln!(
            "[qgpu-sim] fault injection on (seed {}): transfer {}, codec {}, mask {}, worker {}",
            opts.faults.seed,
            opts.faults.p_transfer_corrupt,
            opts.faults.p_codec_fail,
            opts.faults.p_mask_corrupt,
            opts.faults.p_worker_death,
        );
        if opts.faults.kernel_faults_enabled() {
            eprintln!(
                "[qgpu-sim] kernel-flip injection: op {} x{}, {} attempt(s), bit {}",
                opts.faults.kernel_flip_at,
                opts.faults.kernel_flip_count,
                opts.faults.kernel_flip_attempts,
                opts.faults.kernel_flip_bit,
            );
        }
    }
    if opts.verify_invariants {
        config = config.with_verify_invariants();
        eprintln!("[qgpu-sim] ABFT invariant checks on");
    }
    // The flight recorder: --flight-out dumps unconditionally to the
    // given path; any fault-injection run arms it automatically and
    // dumps to the default path only when a trigger event fires.
    match &opts.flight_out {
        Some(path) => {
            config = config.with_flight(FlightConfig {
                path: Some(path.clone()),
                dump_always: true,
                ..FlightConfig::default()
            });
        }
        None if opts.faults.any_enabled() => {
            config = config.with_flight(FlightConfig::default());
        }
        None => {}
    }
    if opts.checkpoint_every > 0 {
        let Some(path) = &opts.checkpoint_out else {
            eprintln!("error: --checkpoint-every requires --checkpoint-out");
            return ExitCode::FAILURE;
        };
        config = config.with_checkpointing(opts.checkpoint_every, path);
    }
    let resume_ckpt = match &opts.resume {
        Some(path) => match qgpu::checkpoint::load_with_progress(path) {
            Ok(ck) => {
                eprintln!(
                    "[qgpu-sim] resuming from {path} ({} ops done)",
                    ck.gates_done
                );
                Some(ck)
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let sim = Simulator::new(config);
    let result = match sim.try_run_from(&circuit, resume_ckpt.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: simulation failed: {e}");
            if matches!(e, SimError::Fatal { .. }) {
                if let Some(path) = &opts.checkpoint_out {
                    eprintln!("[qgpu-sim] recover with --resume {path}");
                }
            }
            return ExitCode::FAILURE;
        }
    };
    let state = result.state.as_ref().expect("state collected");

    // Most likely outcomes.
    let mut probs: Vec<(usize, f64)> = state
        .probabilities()
        .into_iter()
        .enumerate()
        .filter(|&(_, p)| p > 1e-12)
        .collect();
    probs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("top basis states:");
    for &(basis, p) in probs.iter().take(opts.top) {
        println!("  |{basis:0n$b}>  p = {p:.6}");
    }

    if opts.sample {
        let samples = result.samples.as_deref().unwrap_or(&[]);
        println!("\n{} samples ({} distinct):", opts.shots, samples.len());
        for &(basis, count) in samples {
            println!("  |{basis:0n$b}>  x{count}");
        }
    }

    if let Some(path) = &opts.save {
        let save_codec = opts.codec.unwrap_or_default();
        match qgpu::checkpoint::save_with_codec(state, 0, save_codec, path) {
            Ok(()) => eprintln!("[qgpu-sim] checkpoint written to {path}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &opts.compare {
        let reference = match qgpu::checkpoint::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if reference.num_qubits() != n {
            eprintln!(
                "error: --compare: checkpoint has {} qubits but the run has {n}",
                reference.num_qubits()
            );
            return ExitCode::FAILURE;
        }
        let dev = state.max_deviation(&reference);
        eprintln!("[qgpu-sim] compare: max deviation {dev:.3e} vs {path}");
        if dev >= 1e-12 {
            eprintln!("error: --compare: deviation {dev:.3e} exceeds 1e-12");
            return ExitCode::FAILURE;
        }
    }

    if opts.report {
        let r = &result.report;
        println!("\nmodeled execution report ({}):", opts.version);
        println!("  total time        : {:.6} s", r.total_time);
        println!("  host update       : {:.6} s", r.host_time);
        println!("  gpu compute       : {:.6} s", r.gpu_time);
        println!("  transfer busy     : {:.6} s", r.transfer_time);
        println!("  bytes H2D / D2H   : {} / {}", r.bytes_h2d, r.bytes_d2h);
        println!(
            "  chunks pruned     : {} of {}",
            r.chunks_pruned,
            r.chunks_pruned + r.chunks_processed
        );
        println!("  compression ratio : {:.3}x", r.compression_ratio());
        if opts.fuse {
            println!("  gates fused       : {}", r.gates_fused);
            println!("  fused kernels     : {}", r.fused_kernels);
        }
        if r.shots > 0 || r.collapses > 0 || r.noise_ops > 0 {
            println!("  shots             : {}", r.shots);
            println!("  collapses         : {}", r.collapses);
            println!("  noise ops         : {}", r.noise_ops);
        }
        if opts.faults.any_enabled() {
            println!("  chunk retries     : {}", r.chunk_retries);
            println!("  codec fallbacks   : {}", r.codec_fallbacks);
            println!("  prune fallbacks   : {}", r.prune_fallbacks);
            println!("  worker restarts   : {}", r.worker_restarts);
        }
        if let Some(integ) = &result.integrity {
            println!("  invariant checks  : {}", integ.checks);
            println!("  violations        : {}", integ.violations);
            println!("  flips injected    : {}", integ.flips_injected);
            println!(
                "  re-executions     : {} same-device, {} cross-device",
                integ.reexec_same_device, integ.reexec_cross_device
            );
            println!("  repairs           : {}", integ.repairs);
            println!("  quarantines       : {}", integ.quarantines);
        }
        if opts.devices > 1 || opts.mem_budget.is_some() || r.orchestration_events() > 0 {
            println!("  devices           : {}", r.num_gpus);
            println!("  devices lost      : {}", r.devices_lost);
            println!("  chunks migrated   : {}", r.chunks_migrated);
            println!("  steals            : {}", r.steals);
            println!("  pressure downshifts: {}", r.pressure_downshifts);
            println!("  link degradations : {}", r.link_degradations);
            println!("  peak resident     : {} bytes", r.peak_resident_bytes);
        }
    }

    if let Some(path) = &opts.report_json {
        if let Err(e) = fs::write(path, result.report.to_json_string()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[qgpu-sim] report written to {path}");
    }

    if opts.gantt {
        let chart = qgpu_device::gantt::render_full(&result.trace, 100);
        if chart.is_empty() {
            eprintln!("[qgpu-sim] --gantt: no timeline events recorded");
        } else {
            println!("\n{chart}");
        }
    }

    if let Some(path) = &opts.trace_out {
        let spans = result
            .obs
            .as_ref()
            .map(|o| o.spans.as_slice())
            .unwrap_or(&[]);
        let trace = qgpu_obs::ChromeTrace::two_track(&result.trace, spans);
        if let Err(e) = fs::write(path, trace.to_json_string()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[qgpu-sim] trace written to {path}");
    }

    if let Some(path) = &opts.metrics_out {
        let obs = result.obs.as_ref().expect("obs enabled with --metrics-out");
        // Provenance first, then the flat counters/histograms (their
        // keys stay top-level for existing consumers), then the labeled
        // registry.
        let label = opts
            .opts
            .map(|f| f.label())
            .unwrap_or_else(|| opts.version.label().to_string());
        let meta = qgpu_obs::RunMeta::collect(
            &label,
            opts.seed,
            &format!("{:?}", sim.config()),
            env!("CARGO_PKG_VERSION"),
        );
        let mut doc = match obs.metrics.to_json() {
            qgpu_obs::Json::Obj(pairs) => pairs,
            other => vec![("metrics".to_string(), other)],
        };
        doc.insert(0, ("meta".to_string(), meta.to_json()));
        doc.push(("registry".to_string(), obs.registry.to_json()));
        if let Err(e) = fs::write(path, qgpu_obs::Json::Obj(doc).to_string()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[qgpu-sim] metrics written to {path}");
    }

    if opts.drift {
        let obs = result.obs.as_ref().expect("obs enabled with --drift");
        let drift =
            qgpu_obs::DriftReport::new(&result.report, &obs.spans, obs.wall_s, opts.drift_tol);
        println!("\n{}", drift.render());
    }
    ExitCode::SUCCESS
}
