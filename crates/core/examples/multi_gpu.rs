//! Multi-GPU scaling (paper §V-E): round-robin chunk streaming across
//! 1, 2 and 4 modeled GPUs on both of the paper's servers.
//!
//! ```text
//! cargo run --release -p qgpu --example multi_gpu
//! ```

use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_device::Platform;

fn with_gpus(base: &Platform, count: usize) -> Platform {
    let mut p = base.clone();
    p.gpus.truncate(count);
    p.links.truncate(count);
    p.name = format!("{}x{}", count, p.gpus[0].name);
    p
}

fn main() {
    let n = 13;
    let circuit = Benchmark::Qft.generate(n);
    println!("circuit: {} ({} ops)\n", circuit.name(), circuit.len());

    for server in [
        Platform::quad_p4_pcie().miniaturize(n, 496.0 / 8192.0 / 4.0),
        Platform::quad_v100_nvlink().miniaturize(n, 496.0 / 8192.0 / 4.0),
    ] {
        println!("--- server: {} ---", server.name);
        println!("{:<10} {:>14} {:>10}", "gpus", "Q-GPU (ms)", "scaling");
        let mut one_gpu_time = None;
        for count in [1usize, 2, 4] {
            let platform = with_gpus(&server, count);
            let r = Simulator::new(
                SimConfig::new(platform)
                    .with_version(Version::QGpu)
                    .timing_only(),
            )
            .run(&circuit);
            let t = r.report.total_time * 1e3;
            let base = *one_gpu_time.get_or_insert(t);
            println!("{count:<10} {t:>14.3} {:>9.2}x", base / t);
        }
        // And the baseline the paper compares against.
        let baseline = Simulator::new(
            SimConfig::new(server.clone())
                .with_version(Version::Baseline)
                .timing_only(),
        )
        .run(&circuit);
        let qgpu = Simulator::new(
            SimConfig::new(server.clone())
                .with_version(Version::QGpu)
                .timing_only(),
        )
        .run(&circuit);
        println!(
            "4-GPU Q-GPU vs 4-GPU Qiskit baseline: {:.2}x speedup (paper: ~3x)\n",
            baseline.report.total_time / qgpu.report.total_time
        );
    }
}
