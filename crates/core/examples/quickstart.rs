//! Quickstart: build a GHZ circuit, run it through the full Q-GPU
//! pipeline, and inspect both the quantum result and the modeled
//! execution report.
//!
//! ```text
//! cargo run -p qgpu --example quickstart
//! ```

use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::Circuit;
use qgpu_statevec::measure;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Describe the computation: a 12-qubit GHZ state.
    let n = 12;
    let mut circuit = Circuit::with_name(n, "ghz_12");
    circuit.h(0);
    for q in 0..n - 1 {
        circuit.cx(q, q + 1);
    }

    // 2. Configure the simulator: the paper's P100 platform, miniaturized
    //    so the GPU holds only ~6% of the state (the capacity-exceeded
    //    regime Q-GPU targets), running the full optimization recipe.
    let config = SimConfig::scaled_paper(n).with_version(Version::QGpu);
    let result = Simulator::new(config).run(&circuit);

    // 3. Quantum results: sample measurement outcomes.
    let state = result.state.expect("state collected by default");
    println!("final state norm      : {:.12}", state.norm());
    let mut rng = StdRng::seed_from_u64(7);
    println!("measurement samples   :");
    for (basis, count) in measure::sample_counts(&state, 1000, &mut rng) {
        println!("  |{basis:0n$b}>  x{count}");
    }

    // 4. Systems results: what the device model observed.
    let r = &result.report;
    println!("\nmodeled execution time: {:.3} ms", r.total_time * 1e3);
    println!("bytes H2D / D2H       : {} / {}", r.bytes_h2d, r.bytes_d2h);
    println!(
        "chunks pruned         : {} of {}",
        r.chunks_pruned,
        r.chunks_pruned + r.chunks_processed
    );
    println!("compression ratio     : {:.2}x", r.compression_ratio());
}
