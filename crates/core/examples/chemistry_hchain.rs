//! Quantum-chemistry workload: the paper's `hchain` benchmark (a linear
//! hydrogen chain) run under every execution version.
//!
//! Demonstrates the paper's finding that deep, dependency-heavy chemistry
//! circuits benefit from overlap and pruning but see little from
//! reordering — and that every version produces the identical state.
//!
//! ```text
//! cargo run --release -p qgpu --example chemistry_hchain
//! ```

use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::generators::hydrogen_chain;
use qgpu_statevec::observable::{Hamiltonian, Pauli, PauliString};
use qgpu_statevec::StateVector;

fn main() {
    let n = 14;
    let circuit = hydrogen_chain(n, 4);
    println!(
        "hchain_{n}: {} operations, depth {}",
        circuit.len(),
        circuit.depth()
    );

    // Reference state from the plain simulator.
    let mut reference = StateVector::new_zero(n);
    reference.run(&circuit);

    println!(
        "\n{:<10} {:>12} {:>12} {:>14}",
        "version", "time (ms)", "vs baseline", "state deviation"
    );
    let mut baseline_time = None;
    for v in Version::ALL {
        let result = Simulator::new(SimConfig::scaled_paper(n).with_version(v)).run(&circuit);
        let t = result.report.total_time * 1e3;
        let base = *baseline_time.get_or_insert(t);
        let dev = result
            .state
            .expect("state collected")
            .max_deviation(&reference);
        println!(
            "{:<10} {:>12.3} {:>11.2}x {:>14.2e}",
            v.label(),
            t,
            base / t,
            dev
        );
    }

    // Chemistry observables: per-site occupation and the chain's
    // tight-binding energy ⟨H⟩ with H = -t Σ (X_i X_{i+1} + Y_i Y_{i+1})/2
    // + U Σ Z_i.
    let mut occupations = Vec::new();
    for q in 0..n {
        occupations.push(qgpu_statevec::measure::prob_one(&reference, q));
    }
    println!("\nsite occupations ⟨n_i⟩:");
    for (site, occ) in occupations.iter().enumerate() {
        let bar = "#".repeat((occ * 40.0) as usize);
        println!("  site {site:2}: {occ:.3} {bar}");
    }

    let mut h = Hamiltonian::new();
    for i in 0..n - 1 {
        h.add(-0.5, PauliString::new([(i, Pauli::X), (i + 1, Pauli::X)]));
        h.add(-0.5, PauliString::new([(i, Pauli::Y), (i + 1, Pauli::Y)]));
    }
    for i in 0..n {
        h.add(0.25, PauliString::z(i));
    }
    println!(
        "\ntight-binding energy ⟨H⟩ = {:.6}",
        h.expectation(&reference)
    );
}
