//! Ablation of the Q-GPU recipe: layer the four optimizations one at a
//! time over the naive streaming design and attribute the gains.
//!
//! Reproduces the reasoning of the paper's Figure 6 timeline on two
//! contrasting circuits: `iqp` (pruning heaven) and `qaoa` (compression
//! heaven).
//!
//! ```text
//! cargo run --release -p qgpu --example recipe_ablation
//! ```

use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;

fn main() {
    let n = 13;
    for b in [Benchmark::Iqp, Benchmark::Qaoa] {
        let circuit = b.generate(n);
        println!("=== {} ({} ops) ===", circuit.name(), circuit.len());
        println!(
            "{:<10} {:>10} {:>9} {:>12} {:>10} {:>8}",
            "version", "time (ms)", "Δ vs prev", "bytes moved", "pruned", "ratio"
        );
        let mut prev: Option<f64> = None;
        for v in Version::ALL {
            let r = Simulator::new(SimConfig::scaled_paper(n).with_version(v).timing_only())
                .run(&circuit)
                .report;
            let t = r.total_time * 1e3;
            let delta = match prev {
                Some(p) => format!("{:+.1}%", 100.0 * (t - p) / p),
                None => "-".to_string(),
            };
            prev = Some(t);
            println!(
                "{:<10} {:>10.3} {:>9} {:>12} {:>9.1}% {:>7.2}x",
                v.label(),
                t,
                delta,
                r.bytes_h2d + r.bytes_d2h,
                100.0 * r.prune_fraction(),
                r.compression_ratio(),
            );
        }
        println!();
    }
    println!("Reading the table: Overlap halves transfer wall-clock without");
    println!("changing bytes; Pruning/Reorder shrink bytes on iqp; Compression");
    println!("shrinks bytes on qaoa. Exactly the paper's Figure 12 story.");
}
