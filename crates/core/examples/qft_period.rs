//! Period finding with the QFT — the workload at the heart of Shor's
//! algorithm, and the paper's worst case for pruning (all qubits involved
//! immediately; compression does the heavy lifting instead).
//!
//! We prepare a periodic superposition, apply the quantum Fourier
//! transform via the Q-GPU simulator, and read the period off the peaks.
//!
//! ```text
//! cargo run --release -p qgpu --example qft_period
//! ```

use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::generators::quantum_fourier_transform;
use qgpu_circuit::Circuit;

fn main() {
    let n = 12;
    let period = 8usize; // must divide 2^n for clean peaks

    // Prepare sum over k of |k * period> by entangling the low qubits that
    // index within a period to zero: X-basis combs are easiest built by
    // Hadamards on the *high* qubits only.
    let free_qubits = n - (period.trailing_zeros() as usize);
    let mut circuit = Circuit::with_name(n, "qft_period");
    for q in 0..free_qubits {
        // |x> for x = m * period: the multiples occupy the high bit-lanes.
        circuit.h(q + (period.trailing_zeros() as usize));
    }
    circuit.extend_from(&quantum_fourier_transform(n));

    let result =
        Simulator::new(SimConfig::scaled_paper(n).with_version(Version::QGpu)).run(&circuit);
    let state = result.state.expect("state collected");

    // Peaks appear at multiples of 2^n / period.
    let len = state.len();
    let expected_stride = len / period;
    println!("QFT of a period-{period} comb over {n} qubits:");
    let mut peaks: Vec<(usize, f64)> = state
        .probabilities()
        .into_iter()
        .enumerate()
        .filter(|&(_, p)| p > 1e-6)
        .collect();
    peaks.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for &(idx, p) in peaks.iter().take(period) {
        println!(
            "  peak at {idx:5} (stride multiple {}): p = {p:.4}",
            idx / expected_stride
        );
    }
    let all_on_grid = peaks.iter().all(|&(idx, _)| idx % expected_stride == 0);
    println!("\nall peaks on the 2^n/r grid: {all_on_grid} → recovered period r = {period}");
    println!(
        "modeled time: {:.3} ms ({} bytes moved, compression {:.2}x)",
        result.report.total_time * 1e3,
        result.report.bytes_h2d + result.report.bytes_d2h,
        result.report.compression_ratio()
    );
    assert!(all_on_grid, "period structure must survive the pipeline");
}
