//! Per-codec property suite over the [`Codec`] trait: every registered
//! encoding must (1) roundtrip arbitrary doubles and amplitudes
//! bit-exactly, (2) surface payload corruption through the CRC-verified
//! decode as a typed error — never a panic, never silently wrong values —
//! and (3), for the cascade, always emit a buffer that
//! [`try_decode_any`] can bring back without knowing the picker ran.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use qgpu_compress::{
    amplitude_crc32, codec_for_kind, try_decode_any, value_crc32, Codec, CodecKind, DecodeError,
    Encoded,
};
use qgpu_math::Complex64;

/// The concrete (non-meta) kinds plus the cascade, with a fixed GFC
/// segment count so failures reproduce.
fn all_codecs() -> Vec<Box<dyn Codec>> {
    CodecKind::ALL
        .into_iter()
        .map(|kind| codec_for_kind(kind, 4))
        .collect()
}

fn assert_caught_or_exact(
    codec: &dyn Codec,
    corrupted: &Encoded,
    original: &[f64],
    crc: u32,
) -> Result<(), TestCaseError> {
    match codec.try_decode_verified(corrupted, crc) {
        Err(DecodeError { .. }) => Ok(()),
        Ok(decoded) => {
            // Corruption in dead padding bits may decode harmlessly —
            // that is not "silently wrong".
            prop_assert_eq!(decoded.len(), original.len());
            for (a, b) in decoded.iter().zip(original) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "silently wrong value");
            }
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_codec_roundtrips_f64_bit_exactly(
        data in proptest::collection::vec(proptest::num::f64::ANY, 0..600),
    ) {
        for codec in all_codecs() {
            let enc = codec.encode(&data);
            let dec = codec.try_decode(&enc).expect("clean buffer");
            prop_assert_eq!(dec.len(), data.len());
            for (a, b) in data.iter().zip(dec.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "codec {}", codec.kind());
            }
        }
    }

    #[test]
    fn every_codec_roundtrips_amplitudes_bit_exactly(
        amps in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 0..300),
    ) {
        let amps: Vec<Complex64> =
            amps.into_iter().map(|(re, im)| Complex64::new(re, im)).collect();
        for codec in all_codecs() {
            let crc = amplitude_crc32(&amps);
            let enc = codec.encode_amplitudes(&amps);
            let dec = codec
                .try_decode_amplitudes_verified(&enc, crc)
                .expect("clean buffer must verify");
            prop_assert_eq!(dec.len(), amps.len());
            for (a, b) in dec.iter().zip(&amps) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
            prop_assert!(codec.try_decode_amplitudes_verified(&enc, crc ^ 1).is_err());
        }
    }

    #[test]
    fn corruption_is_detected_by_verified_decode(
        data in proptest::collection::vec(-1.0f64..1.0, 16..400),
        byte_pick in 0usize..8192,
        bit in 0u8..8,
    ) {
        for codec in all_codecs() {
            let crc = value_crc32(&data);
            let clean = codec.encode(&data);
            let mut segments: Vec<Vec<u8>> = (0..clean.num_segments())
                .map(|i| clean.segment(i).to_vec())
                .collect();
            let total: usize = segments.iter().map(|s| s.len()).sum();
            if total == 0 {
                continue;
            }
            // Flip one bit somewhere in the concatenated payload.
            let mut target = byte_pick % total;
            for seg in segments.iter_mut() {
                if target < seg.len() {
                    seg[target] ^= 1 << bit;
                    break;
                }
                target -= seg.len();
            }
            let corrupted =
                Encoded::from_parts(clean.codec(), clean.num_values(), segments);
            assert_caught_or_exact(codec.as_ref(), &corrupted, &data, crc)?;
        }
    }

    #[test]
    fn byte_soup_never_panics(
        soup in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..256), 1..4),
        declared in 0usize..1024,
        kind_pick in 0usize..4,
    ) {
        let kind = CodecKind::ALL[kind_pick];
        let codec = codec_for_kind(kind, soup.len().max(1));
        let buffer = Encoded::from_parts(kind, declared, soup);
        // Outcome is irrelevant — only that it is an outcome, not a panic.
        let _ = codec.try_decode(&buffer);
        let _ = codec.try_decode_verified(&buffer, 0xDEAD_BEEF);
        let _ = codec.try_decode_amplitudes(&buffer);
        let _ = try_decode_any(&buffer);
    }

    #[test]
    fn cascade_always_picks_a_decodable_encoding(
        data in proptest::collection::vec(proptest::num::f64::ANY, 0..800),
        segs in 1usize..12,
    ) {
        let cascade = codec_for_kind(CodecKind::Cascade, segs);
        let enc = cascade.encode(&data);
        prop_assert_ne!(enc.codec(), CodecKind::Cascade);
        // Decodable by the dispatcher, by the cascade itself, and by a
        // fresh instance of the winning codec.
        let via_any = try_decode_any(&enc).expect("dispatcher decode");
        let via_cascade = cascade.try_decode(&enc).expect("cascade decode");
        let via_winner = codec_for_kind(enc.codec(), segs)
            .try_decode(&enc)
            .expect("winner decode");
        for decoded in [via_any, via_cascade, via_winner] {
            prop_assert_eq!(decoded.len(), data.len());
            for (a, b) in data.iter().zip(decoded.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
