//! Adversarial decode robustness: randomly corrupted GFC byte streams
//! must come back as a typed [`DecodeGfcError`] — never a panic, and
//! never silently wrong values. Structural checks catch most damage;
//! the CRC-verified decode closes the rest, which is exactly the
//! contract the resilient chunk pipeline's retry logic builds on.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use qgpu_compress::gfc::DecodeGfcError;
use qgpu_compress::{amplitude_crc32, value_crc32, Compressed, GfcCodec};
use qgpu_math::Complex64;

/// Decodes a (possibly corrupted) buffer with CRC verification and
/// asserts the only two legal outcomes: a typed error, or a bit-exact
/// reproduction of the original data (corruption in dead padding bits
/// may decode harmlessly — that is not "silently wrong").
fn assert_caught_or_exact(
    codec: &GfcCodec,
    corrupted: &Compressed,
    original: &[f64],
    crc: u32,
) -> Result<(), TestCaseError> {
    match codec.try_decompress_verified(corrupted, crc) {
        Err(DecodeGfcError { .. }) => Ok(()),
        Ok(decoded) => {
            prop_assert_eq!(decoded.len(), original.len());
            for (a, b) in decoded.iter().zip(original) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "silently wrong value");
            }
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bit_flips_are_caught_or_harmless(
        data in proptest::collection::vec(-1.0f64..1.0, 16..400),
        segs in 1usize..8,
        seg_pick in 0usize..8,
        byte_pick in 0usize..4096,
        bit in 0u8..8,
    ) {
        let codec = GfcCodec::new(segs);
        let crc = value_crc32(&data);
        let clean = codec.compress(&data);
        let mut segments: Vec<Vec<u8>> =
            (0..clean.num_segments()).map(|i| clean.segment(i).to_vec()).collect();
        let s = seg_pick % segments.len();
        if !segments[s].is_empty() {
            let b = byte_pick % segments[s].len();
            segments[s][b] ^= 1 << bit;
        }
        let corrupted = Compressed::from_parts(clean.num_values(), segments);
        assert_caught_or_exact(&codec, &corrupted, &data, crc)?;
    }

    #[test]
    fn truncation_and_garbage_extension_are_caught(
        data in proptest::collection::vec(proptest::num::f64::ANY, 8..200),
        cut in 0usize..4096,
        junk in proptest::collection::vec(0u8..=255, 0..32),
    ) {
        let codec = GfcCodec::new(3);
        let crc = value_crc32(&data);
        let clean = codec.compress(&data);
        let mut segments: Vec<Vec<u8>> =
            (0..clean.num_segments()).map(|i| clean.segment(i).to_vec()).collect();
        // Truncate one segment, splice garbage onto another.
        let n = segments.len();
        let len0 = segments[0].len();
        segments[0].truncate(cut % (len0 + 1));
        segments[n - 1].extend_from_slice(&junk);
        let corrupted = Compressed::from_parts(clean.num_values(), segments);
        assert_caught_or_exact(&codec, &corrupted, &data, crc)?;
    }

    #[test]
    fn arbitrary_byte_soup_never_panics(
        soup in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..256), 1..4),
        declared in 0usize..1024,
    ) {
        let codec = GfcCodec::new(soup.len());
        let buffer = Compressed::from_parts(declared, soup);
        // Outcome is irrelevant — only that it is an outcome, not a panic.
        let _ = codec.try_decompress(&buffer);
        let _ = codec.try_decompress_verified(&buffer, 0xDEAD_BEEF);
        let _ = codec.try_decompress_amplitudes(&buffer);
    }

    #[test]
    fn amplitude_crc_detects_parseable_damage(
        amps in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 32..256),
    ) {
        let amps: Vec<Complex64> =
            amps.into_iter().map(|(re, im)| Complex64::new(re, im)).collect();
        let codec = GfcCodec::new(4);
        let crc = amplitude_crc32(&amps);
        let clean = codec.compress_amplitudes(&amps);
        // The clean buffer must verify and roundtrip bit-exactly.
        let decoded = codec
            .try_decompress_amplitudes_verified(&clean, crc)
            .expect("clean buffer must verify");
        prop_assert_eq!(decoded.len(), amps.len());
        for (a, b) in decoded.iter().zip(&amps) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        // A wrong CRC must be rejected even on an undamaged buffer.
        prop_assert!(codec
            .try_decompress_amplitudes_verified(&clean, crc ^ 1)
            .is_err());
    }
}
