//! Residual-distribution analysis (paper Figure 10).
//!
//! The paper demonstrates compressibility by plotting the residuals of
//! consecutive state amplitudes: circuits whose amplitudes vary smoothly
//! along the state vector (`qaoa`) have residuals concentrated near zero,
//! while circuits with dispersed amplitudes (`iqp`) do not — predicting
//! which circuits benefit from GFC compression.

use qgpu_math::stats::{Histogram, OnlineStats};
use qgpu_math::Complex64;
use serde::{Deserialize, Serialize};

/// Summary of the consecutive-amplitude residual distribution of a state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResidualProfile {
    /// Fraction of residuals with magnitude below `1e-6`.
    pub near_zero_fraction: f64,
    /// Mean absolute residual.
    pub mean_abs: f64,
    /// Maximum absolute residual.
    pub max_abs: f64,
    /// Histogram of residual values.
    pub histogram: Histogram,
}

/// Computes the residuals of consecutive doubles in the interleaved
/// `re, im` amplitude stream — exactly the stream GFC compresses.
pub fn residuals(amps: &[Complex64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(amps.len().saturating_sub(1) * 2);
    for w in amps.windows(2) {
        out.push(w[1].re - w[0].re);
        out.push(w[1].im - w[0].im);
    }
    out
}

/// Profiles the residual distribution of a state's amplitudes.
///
/// # Examples
///
/// ```
/// use qgpu_compress::residual::profile;
/// use qgpu_math::Complex64;
///
/// // A perfectly uniform state has all-zero residuals.
/// let amps = vec![Complex64::new(0.5, 0.0); 64];
/// let p = profile(&amps);
/// assert_eq!(p.near_zero_fraction, 1.0);
/// ```
pub fn profile(amps: &[Complex64]) -> ResidualProfile {
    let rs = residuals(amps);
    let mut stats = OnlineStats::new();
    let mut near_zero = 0usize;
    let mut max_abs: f64 = 0.0;
    for &r in &rs {
        let a = r.abs();
        stats.push(a);
        max_abs = max_abs.max(a);
        if a < 1e-6 {
            near_zero += 1;
        }
    }
    let range = max_abs.max(1e-12);
    let mut histogram = Histogram::new(-range, range + f64::MIN_POSITIVE, 41);
    for &r in &rs {
        histogram.push(r);
    }
    ResidualProfile {
        near_zero_fraction: if rs.is_empty() {
            1.0
        } else {
            near_zero as f64 / rs.len() as f64
        },
        mean_abs: stats.mean(),
        max_abs,
        histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_state_is_perfectly_smooth() {
        let amps = vec![Complex64::new(0.1, -0.2); 100];
        let p = profile(&amps);
        assert_eq!(p.near_zero_fraction, 1.0);
        assert_eq!(p.max_abs, 0.0);
    }

    #[test]
    fn alternating_state_is_rough() {
        let amps: Vec<Complex64> = (0..100)
            .map(|i| Complex64::from_real(if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let p = profile(&amps);
        // Imaginary parts are constant (zero residuals); every real-part
        // residual jumps by 2.
        assert_eq!(p.near_zero_fraction, 0.5);
        assert!((p.max_abs - 2.0).abs() < 1e-12);
    }

    #[test]
    fn residual_count() {
        let amps = vec![Complex64::ZERO; 10];
        assert_eq!(residuals(&amps).len(), 18); // (10-1) pairs × 2 parts
    }

    #[test]
    fn single_amplitude_has_no_residuals() {
        let p = profile(&[Complex64::ONE]);
        assert_eq!(p.near_zero_fraction, 1.0);
    }

    #[test]
    fn histogram_centered() {
        let amps: Vec<Complex64> = (0..50)
            .map(|i| Complex64::from_real(i as f64 * 0.01))
            .collect();
        let p = profile(&amps);
        assert!(p.histogram.total() > 0);
        assert_eq!(p.histogram.underflow(), 0);
    }
}
