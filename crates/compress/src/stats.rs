//! Compression accounting used by the experiment harness.

use serde::{Deserialize, Serialize};

/// Input/output byte counts for one or more compression operations.
///
/// # Examples
///
/// ```
/// use qgpu_compress::CompressionStats;
///
/// let mut s = CompressionStats::new(1000, 250);
/// assert_eq!(s.ratio(), 4.0);
/// s.merge(&CompressionStats::new(1000, 750));
/// assert_eq!(s.ratio(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CompressionStats {
    in_bytes: u64,
    out_bytes: u64,
    operations: u64,
}

impl CompressionStats {
    /// Stats for a single operation.
    pub fn new(in_bytes: usize, out_bytes: usize) -> Self {
        CompressionStats {
            in_bytes: in_bytes as u64,
            out_bytes: out_bytes as u64,
            operations: 1,
        }
    }

    /// An empty accumulator.
    pub fn empty() -> Self {
        CompressionStats::default()
    }

    /// Total uncompressed bytes.
    pub fn in_bytes(&self) -> u64 {
        self.in_bytes
    }

    /// Total compressed bytes.
    pub fn out_bytes(&self) -> u64 {
        self.out_bytes
    }

    /// Number of compression operations accumulated.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Compression ratio `in / out` (1.0 when nothing was compressed).
    pub fn ratio(&self) -> f64 {
        if self.out_bytes == 0 {
            1.0
        } else {
            self.in_bytes as f64 / self.out_bytes as f64
        }
    }

    /// Bytes saved (0 if compression expanded the data).
    pub fn bytes_saved(&self) -> u64 {
        self.in_bytes.saturating_sub(self.out_bytes)
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &CompressionStats) {
        self.in_bytes += other.in_bytes;
        self.out_bytes += other.out_bytes;
        self.operations += other.operations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ratio_is_one() {
        assert_eq!(CompressionStats::empty().ratio(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut s = CompressionStats::empty();
        s.merge(&CompressionStats::new(100, 50));
        s.merge(&CompressionStats::new(200, 100));
        assert_eq!(s.in_bytes(), 300);
        assert_eq!(s.out_bytes(), 150);
        assert_eq!(s.operations(), 2);
        assert_eq!(s.ratio(), 2.0);
    }

    #[test]
    fn expansion_saves_nothing() {
        let s = CompressionStats::new(100, 150);
        assert_eq!(s.bytes_saved(), 0);
        assert!(s.ratio() < 1.0);
    }
}
