//! Sampling-selected compression cascade.
//!
//! btrblocks and Vortex pick an encoding per block by compressing a small
//! sample under every candidate and keeping the winner, instead of
//! hardcoding one scheme. [`CascadeCodec`] applies that recipe to the
//! simulator's chunks: it probes a strided sample with GFC, the zero-run
//! shortcut, and ALP, scores each candidate on
//! `estimated ratio × modeled throughput`, and encodes the full chunk
//! with the winner. Buffers are stamped with the winning
//! [`CodecKind`], so any consumer decodes them through
//! [`try_decode_any`] without knowing the cascade
//! was involved.
//!
//! Candidates whose estimated ratio falls below break-even are discarded
//! (a fast codec that expands data is never a win over the raw-transfer
//! fallback), and GFC remains the default when nothing clears the bar —
//! so on dense amplitude chunks the cascade behaves exactly like GFC,
//! while pruned / collapsed chunks collapse to a 12-byte run record.

use qgpu_math::Complex64;
use qgpu_obs::{span_opt, Recorder, Stage, Track};

use crate::alp::AlpCodec;
use crate::codec::{try_decode_any, Codec, CodecKind, DecodeError, Encoded};
use crate::gfc::GfcCodec;
use crate::zero_run::ZeroRunCodec;

/// Contiguous values per sample run.
const SAMPLE_RUN: usize = 64;

/// Number of runs spread evenly across the chunk.
const SAMPLE_RUNS: usize = 4;

/// Candidates below this estimated ratio are discarded: encoding that
/// expands data never beats the engine's raw-size cap.
const MIN_RATIO: f64 = 1.0;

/// The sampling meta-codec. Holds one instance of every candidate; the
/// GFC candidate inherits the chunk-sized segment count the engine would
/// have used, so "cascade picks GFC" is byte-identical to running GFC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CascadeCodec {
    gfc: GfcCodec,
    /// Single-segment GFC used on samples, where per-segment restart
    /// overhead would swamp the ratio estimate.
    probe_gfc: GfcCodec,
    zero_run: ZeroRunCodec,
    alp: AlpCodec,
}

impl CascadeCodec {
    /// Creates a cascade whose GFC candidate uses `gfc_segments`.
    ///
    /// # Panics
    ///
    /// Panics if `gfc_segments == 0`.
    pub fn new(gfc_segments: usize) -> Self {
        CascadeCodec {
            gfc: GfcCodec::new(gfc_segments),
            probe_gfc: GfcCodec::new(1),
            zero_run: ZeroRunCodec::new(),
            alp: AlpCodec::new(),
        }
    }

    /// Scores every candidate on the sample and returns the winner.
    pub fn pick(&self, data: &[f64]) -> CodecKind {
        if data.is_empty() {
            return CodecKind::Gfc;
        }
        let sample = sample_of(data);
        let raw = (sample.len() * 8) as f64;
        let mut winner = (CodecKind::Gfc, f64::MIN);
        for kind in [CodecKind::Gfc, CodecKind::ZeroRun, CodecKind::Alp] {
            let encoded_bytes = match kind {
                CodecKind::Gfc => self.probe_gfc.encode(&sample).total_bytes(),
                CodecKind::ZeroRun => self.zero_run.encode(&sample).total_bytes(),
                CodecKind::Alp => self.alp.encode(&sample).total_bytes(),
                CodecKind::Cascade => unreachable!(),
            };
            let ratio = raw / encoded_bytes.max(1) as f64;
            if ratio < MIN_RATIO && kind != CodecKind::Gfc {
                continue;
            }
            let score = ratio * kind.throughput_factor();
            if score > winner.1 {
                winner = (kind, score);
            }
        }
        winner.0
    }

    fn encode_with(&self, kind: CodecKind, data: &[f64]) -> Encoded {
        match kind {
            CodecKind::Gfc => self.gfc.encode(data),
            CodecKind::ZeroRun => self.zero_run.encode(data),
            CodecKind::Alp => self.alp.encode(data),
            CodecKind::Cascade => unreachable!("cascade never delegates to itself"),
        }
    }
}

/// Up to `SAMPLE_RUNS` contiguous runs of `SAMPLE_RUN` values, spread
/// evenly; short inputs are sampled whole.
fn sample_of(data: &[f64]) -> Vec<f64> {
    if data.len() <= SAMPLE_RUN * SAMPLE_RUNS {
        return data.to_vec();
    }
    let mut sample = Vec::with_capacity(SAMPLE_RUN * SAMPLE_RUNS);
    for r in 0..SAMPLE_RUNS {
        let start = r * (data.len() - SAMPLE_RUN) / (SAMPLE_RUNS - 1);
        sample.extend_from_slice(&data[start..start + SAMPLE_RUN]);
    }
    sample
}

impl Codec for CascadeCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Cascade
    }

    fn encode(&self, data: &[f64]) -> Encoded {
        self.encode_with(self.pick(data), data)
    }

    fn try_decode(&self, enc: &Encoded) -> Result<Vec<f64>, DecodeError> {
        try_decode_any(enc)
    }

    /// Observed encode that additionally publishes the per-chunk pick:
    /// bumps `codec.cascade.picks` plus a per-winner counter and drops a
    /// `codec.pick` flight-recorder event, so post-mortems can see which
    /// encodings a run actually used.
    fn encode_amplitudes_observed(&self, amps: &[Complex64], rec: Option<&Recorder>) -> Encoded {
        let _g = span_opt(rec, Track::Main, Stage::Compress, "cascade.compress");
        let encoded = self.encode_amplitudes(amps);
        if let Some(r) = rec {
            let raw = std::mem::size_of_val(amps) as u64;
            let out = encoded.total_bytes().max(1) as u64;
            r.observe("compress.ratio.x100", raw * 100 / out);
            let pick = encoded.codec();
            crate::codec::record_cascade_pick(r, pick);
            r.flight("codec.pick", || {
                format!(
                    "cascade picked {} for {} amplitudes ({} B)",
                    pick,
                    amps.len(),
                    encoded.total_bytes()
                )
            });
        }
        encoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn zero_chunks_pick_zero_run() {
        let cascade = CascadeCodec::new(8);
        let data = vec![0.0f64; 4096];
        assert_eq!(cascade.pick(&data), CodecKind::ZeroRun);
        let enc = cascade.encode(&data);
        assert_eq!(enc.codec(), CodecKind::ZeroRun);
        assert_eq!(enc.total_bytes(), 12);
        assert_eq!(cascade.decode(&enc), data);
    }

    #[test]
    fn dense_amplitudes_pick_gfc() {
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<f64> = (0..4096).map(|_| rng.gen_range(-0.05..0.05)).collect();
        let cascade = CascadeCodec::new(8);
        assert_eq!(cascade.pick(&data), CodecKind::Gfc);
        let enc = cascade.encode(&data);
        assert_eq!(enc.codec(), CodecKind::Gfc);
    }

    #[test]
    fn decimal_data_picks_alp() {
        let data: Vec<f64> = (0..4096).map(|i| (i % 977) as f64 * 0.01).collect();
        let cascade = CascadeCodec::new(8);
        assert_eq!(cascade.pick(&data), CodecKind::Alp);
    }

    #[test]
    fn gfc_pick_matches_plain_gfc_bytes() {
        // When the cascade picks GFC the buffer must be byte-identical to
        // the engine's standalone GFC at the same segment count.
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<f64> = (0..2048).map(|_| rng.gen_range(-0.1..0.1)).collect();
        let cascade = CascadeCodec::new(8);
        let via_cascade = cascade.encode(&data);
        let plain = GfcCodec::new(8).encode(&data);
        assert_eq!(via_cascade.codec(), CodecKind::Gfc);
        assert_eq!(via_cascade.total_bytes(), plain.total_bytes());
        assert_eq!(via_cascade, plain);
    }

    #[test]
    fn empty_input_is_decodable() {
        let cascade = CascadeCodec::new(4);
        let enc = cascade.encode(&[]);
        assert_eq!(cascade.decode(&enc), Vec::<f64>::new());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn cascade_always_picks_a_decodable_encoding(
            data in proptest::collection::vec(proptest::num::f64::ANY, 0..800),
            segs in 1usize..16,
        ) {
            let cascade = CascadeCodec::new(segs);
            let enc = cascade.encode(&data);
            prop_assert_ne!(enc.codec(), CodecKind::Cascade);
            let dec = try_decode_any(&enc).unwrap();
            prop_assert_eq!(dec.len(), data.len());
            for (a, b) in data.iter().zip(dec.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn sparse_chunks_never_lose_to_plain_gfc(
            zeros in 512usize..2048,
            v in -1.0f64..1.0,
        ) {
            // Pruned chunk shape: a lone amplitude in a sea of zeros.
            let mut data = vec![0.0f64; zeros];
            data[0] = v;
            let cascade = CascadeCodec::new(8);
            let enc = cascade.encode(&data);
            let gfc = GfcCodec::new(8).encode(&data);
            prop_assert!(enc.total_bytes() <= gfc.total_bytes());
        }
    }
}
