//! The codec abstraction layer: a [`Codec`] trait over lossless `f64`
//! encoders, codec-agnostic [`Encoded`] framing, and the CRC-sealed
//! verified-decode path shared by every implementation.
//!
//! Historically the pipeline was hardwired to [`GfcCodec`]; this module
//! lifts the pieces that were never GFC-specific — the segment framing,
//! the `value_crc32`/`amplitude_crc32` content seals, the observed
//! compress/decompress spans — into one place so alternative encoders
//! ([`ZeroRunCodec`],
//! [`AlpCodec`]) and the sampling
//! [`CascadeCodec`](crate::cascade::CascadeCodec) plug into the engine,
//! the checkpoint format, and the modeled `Timeline` without touching
//! call sites.

use std::fmt;
use std::str::FromStr;

use qgpu_faults::Crc32;
use qgpu_math::Complex64;
use qgpu_obs::{span_opt, Recorder, Stage, Track};
use serde::{Deserialize, Serialize};

use crate::alp::AlpCodec;
use crate::gfc::GfcCodec;
use crate::stats::CompressionStats;
use crate::zero_run::ZeroRunCodec;

/// CRC32 (IEEE) over the little-endian bytes of a double slice — the
/// integrity tag the resilient pipeline computes at encode time and
/// verifies after decode, catching corruption the formats' own structural
/// checks cannot (a bit flip that still parses).
pub fn value_crc32(data: &[f64]) -> u32 {
    let mut crc = Crc32::new();
    for v in data {
        crc.update(&v.to_le_bytes());
    }
    crc.finish()
}

/// [`value_crc32`] over interleaved `re, im` amplitude doubles — matches
/// what [`Codec::try_decode_amplitudes_verified`] recomputes.
pub fn amplitude_crc32(amps: &[Complex64]) -> u32 {
    value_crc32(amps_as_f64(amps))
}

/// Reinterprets amplitudes as interleaved doubles (zero-copy).
pub(crate) fn amps_as_f64(amps: &[Complex64]) -> &[f64] {
    // Safety: Complex64 is repr(C) with exactly two f64 fields.
    unsafe { std::slice::from_raw_parts(amps.as_ptr().cast::<f64>(), amps.len() * 2) }
}

/// Identifies a concrete encoding. The discriminants are stable on-disk
/// identifiers (checkpoint format v3 stores one per segment) — never
/// renumber them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum CodecKind {
    /// The paper's GFC warp-parallel residual coder.
    Gfc,
    /// Run-length shortcut for all-zero / repeated-value chunks.
    ZeroRun,
    /// ALP-style adaptive lossless decimal-scaled FP coder.
    Alp,
    /// Sampling meta-codec: scores the other three per chunk and
    /// delegates; never appears as an on-disk encoding id.
    Cascade,
}

impl CodecKind {
    /// Every selectable kind, in CLI order.
    pub const ALL: [CodecKind; 4] = [
        CodecKind::Gfc,
        CodecKind::ZeroRun,
        CodecKind::Alp,
        CodecKind::Cascade,
    ];

    /// Stable one-byte on-disk identifier (checkpoint v3 segments).
    pub fn id(self) -> u8 {
        match self {
            CodecKind::Gfc => 0,
            CodecKind::ZeroRun => 1,
            CodecKind::Alp => 2,
            CodecKind::Cascade => 3,
        }
    }

    /// Inverse of [`CodecKind::id`].
    pub fn from_id(id: u8) -> Option<CodecKind> {
        match id {
            0 => Some(CodecKind::Gfc),
            1 => Some(CodecKind::ZeroRun),
            2 => Some(CodecKind::Alp),
            3 => Some(CodecKind::Cascade),
            _ => None,
        }
    }

    /// Canonical CLI / metrics name.
    pub fn name(self) -> &'static str {
        match self {
            CodecKind::Gfc => "gfc",
            CodecKind::ZeroRun => "zero-run",
            CodecKind::Alp => "alp",
            CodecKind::Cascade => "cascade",
        }
    }

    /// Modeled encode throughput relative to GFC's compress kernel — the
    /// same ratios the device specs bake into their per-codec modeled
    /// bandwidths, used by the cascade to score `ratio × throughput`.
    pub fn throughput_factor(self) -> f64 {
        match self {
            CodecKind::Gfc => 1.0,
            // A run-length scan is read-bandwidth bound and writes almost
            // nothing; far cheaper than GFC's residual + prefix packing.
            CodecKind::ZeroRun => 3.5,
            // Exponent probing plus bit-packing costs more than GFC.
            CodecKind::Alp => 0.7,
            // Sampling overhead on top of the winner's own cost.
            CodecKind::Cascade => 0.9,
        }
    }

    /// Recorder span label for this codec's encode pass (e.g.
    /// `"gfc.compress"`) — the engine's sizing pass reuses it so the
    /// measured Compress span names the codec that actually ran.
    pub fn compress_span(self) -> &'static str {
        match self {
            CodecKind::Gfc => "gfc.compress",
            CodecKind::ZeroRun => "zero-run.compress",
            CodecKind::Alp => "alp.compress",
            CodecKind::Cascade => "cascade.compress",
        }
    }

    /// Recorder span label for this codec's decode pass.
    pub fn decompress_span(self) -> &'static str {
        match self {
            CodecKind::Gfc => "gfc.decompress",
            CodecKind::ZeroRun => "zero-run.decompress",
            CodecKind::Alp => "alp.decompress",
            CodecKind::Cascade => "cascade.decompress",
        }
    }
}

impl fmt::Display for CodecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Default for CodecKind {
    /// GFC — the paper's codec and the bit-exact golden default.
    fn default() -> Self {
        CodecKind::Gfc
    }
}

impl FromStr for CodecKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "gfc" => Ok(CodecKind::Gfc),
            "zero-run" | "zerorun" | "zero_run" => Ok(CodecKind::ZeroRun),
            "alp" => Ok(CodecKind::Alp),
            "cascade" => Ok(CodecKind::Cascade),
            other => Err(format!(
                "unknown codec '{other}' (expected gfc|zero-run|alp|cascade)"
            )),
        }
    }
}

/// A codec-agnostic encoded buffer: which encoding produced it, how many
/// doubles it decodes to, and the independently decodable segments.
///
/// Segment granularity is codec-defined (GFC emits one per warp; the
/// scalar codecs emit one in total); persistence formats that need
/// per-segment metadata store [`Encoded::codec`] alongside each one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Encoded {
    codec: CodecKind,
    num_values: usize,
    segments: Vec<Vec<u8>>,
}

impl Encoded {
    /// Assembles a buffer from parts (decoding validates consistency).
    pub fn from_parts(codec: CodecKind, num_values: usize, segments: Vec<Vec<u8>>) -> Self {
        Encoded {
            codec,
            num_values,
            segments,
        }
    }

    /// The encoding that produced this buffer (for a cascade, the
    /// *winning* inner codec — never [`CodecKind::Cascade`] itself).
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Number of `f64` values the buffer decodes to.
    pub fn num_values(&self) -> usize {
        self.num_values
    }

    /// Number of independently encoded segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Raw bytes of segment `i` (for persistence formats).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn segment(&self, i: usize) -> &[u8] {
        &self.segments[i]
    }

    /// All segments, consumed (for persistence formats).
    pub fn into_segments(self) -> Vec<Vec<u8>> {
        self.segments
    }

    /// Total encoded payload in bytes (framing excluded, matching how
    /// the engine models transfer sizes).
    pub fn total_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// Compression statistics against the uncompressed size.
    pub fn stats(&self) -> CompressionStats {
        CompressionStats::new(self.num_values * 8, self.total_bytes())
    }
}

/// Error returned when an encoded buffer cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The encoding that was being decoded.
    pub codec: CodecKind,
    /// Index of the offending segment (one past the end for whole-buffer
    /// failures such as CRC mismatches).
    pub segment: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "corrupt {} segment {}: {}",
            self.codec, self.segment, self.message
        )
    }
}

impl std::error::Error for DecodeError {}

/// A lossless `f64` codec the engine can hold as `dyn Codec`.
///
/// Implementors provide bit-exact [`Codec::encode`]/[`Codec::try_decode`]
/// over raw doubles; the amplitude views, observed (span + ratio
/// histogram) variants, and CRC-verified decodes are shared provided
/// methods so every codec gets the same sealing semantics the resilient
/// pipeline relies on.
pub trait Codec: fmt::Debug + Send + Sync {
    /// Which encoding family this codec selects (a cascade reports
    /// [`CodecKind::Cascade`] even though its buffers carry the winner).
    fn kind(&self) -> CodecKind;

    /// Encodes a slice of doubles, losslessly.
    fn encode(&self, data: &[f64]) -> Encoded;

    /// Decodes back into doubles, reporting corruption as an error.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the buffer is structurally corrupt or
    /// was produced by an encoding this codec cannot decode.
    fn try_decode(&self, enc: &Encoded) -> Result<Vec<f64>, DecodeError>;

    /// Decodes back into doubles.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is corrupt; use [`Codec::try_decode`] for
    /// untrusted data.
    fn decode(&self, enc: &Encoded) -> Vec<f64> {
        self.try_decode(enc).expect("corrupt encoded buffer")
    }

    /// Encodes a complex-amplitude slice (viewed as interleaved `re, im`
    /// doubles, exactly how the simulator stores chunks).
    fn encode_amplitudes(&self, amps: &[Complex64]) -> Encoded {
        self.encode(amps_as_f64(amps))
    }

    /// [`Codec::encode_amplitudes`] under observation: records a
    /// [`Stage::Compress`] span and the per-chunk compression ratio
    /// (×100, into the `compress.ratio.x100` histogram). With
    /// `rec == None` this is exactly `encode_amplitudes` — no clock
    /// reads.
    fn encode_amplitudes_observed(&self, amps: &[Complex64], rec: Option<&Recorder>) -> Encoded {
        let _g = span_opt(
            rec,
            Track::Main,
            Stage::Compress,
            self.kind().compress_span(),
        );
        let encoded = self.encode_amplitudes(amps);
        if let Some(r) = rec {
            let raw = std::mem::size_of_val(amps) as u64;
            let out = encoded.total_bytes().max(1) as u64;
            r.observe("compress.ratio.x100", raw * 100 / out);
        }
        encoded
    }

    /// Decodes into complex amplitudes, reporting corruption.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on corrupt buffers or an odd number of
    /// decoded doubles.
    fn try_decode_amplitudes(&self, enc: &Encoded) -> Result<Vec<Complex64>, DecodeError> {
        let doubles = self.try_decode(enc)?;
        if doubles.len() % 2 != 0 {
            return Err(DecodeError {
                codec: enc.codec(),
                segment: enc.num_segments(),
                message: "odd number of doubles for a complex buffer",
            });
        }
        Ok(doubles
            .chunks_exact(2)
            .map(|p| Complex64::new(p[0], p[1]))
            .collect())
    }

    /// Decodes into complex amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is corrupt or holds an odd number of doubles;
    /// use [`Codec::try_decode_amplitudes`] for untrusted data.
    fn decode_amplitudes(&self, enc: &Encoded) -> Vec<Complex64> {
        self.try_decode_amplitudes(enc)
            .expect("corrupt encoded buffer")
    }

    /// [`Codec::decode_amplitudes`] under observation: records a
    /// [`Stage::Decompress`] span.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is corrupt, like [`Codec::decode_amplitudes`].
    fn decode_amplitudes_observed(&self, enc: &Encoded, rec: Option<&Recorder>) -> Vec<Complex64> {
        let _g = span_opt(
            rec,
            Track::Main,
            Stage::Decompress,
            self.kind().decompress_span(),
        );
        self.decode_amplitudes(enc)
    }

    /// Decodes and verifies the content against the CRC32 computed at
    /// encode time (see [`value_crc32`]). The structural checks in
    /// [`Codec::try_decode`] reject most damage; the CRC closes the gap
    /// where corrupted bytes still parse into the right number of values
    /// — without it those would surface as silently wrong amplitudes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on structural corruption or a content CRC
    /// mismatch.
    fn try_decode_verified(
        &self,
        enc: &Encoded,
        expected_crc: u32,
    ) -> Result<Vec<f64>, DecodeError> {
        let out = self.try_decode(enc)?;
        if value_crc32(&out) != expected_crc {
            return Err(DecodeError {
                codec: enc.codec(),
                segment: enc.num_segments(),
                message: "decoded content fails CRC32 verification",
            });
        }
        Ok(out)
    }

    /// Amplitude counterpart of [`Codec::try_decode_verified`]: the CRC
    /// is over the interleaved doubles ([`amplitude_crc32`]).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on structural corruption, an odd double
    /// count, or a content CRC mismatch.
    fn try_decode_amplitudes_verified(
        &self,
        enc: &Encoded,
        expected_crc: u32,
    ) -> Result<Vec<Complex64>, DecodeError> {
        let amps = self.try_decode_amplitudes(enc)?;
        if amplitude_crc32(&amps) != expected_crc {
            return Err(DecodeError {
                codec: enc.codec(),
                segment: enc.num_segments(),
                message: "decoded content fails CRC32 verification",
            });
        }
        Ok(amps)
    }
}

/// Builds the codec a run configured, sized for the given chunk.
///
/// `gfc_segments` only affects GFC-family encoders (including the
/// cascade's GFC candidate); the scalar codecs ignore it.
pub fn codec_for_kind(kind: CodecKind, gfc_segments: usize) -> Box<dyn Codec> {
    match kind {
        CodecKind::Gfc => Box::new(GfcCodec::new(gfc_segments)),
        CodecKind::ZeroRun => Box::new(ZeroRunCodec::new()),
        CodecKind::Alp => Box::new(AlpCodec::new()),
        CodecKind::Cascade => Box::new(crate::cascade::CascadeCodec::new(gfc_segments)),
    }
}

/// Decodes a buffer produced by *any* concrete encoding, dispatching on
/// [`Encoded::codec`] — how cascade buffers and mixed-codec checkpoint
/// segments come back without knowing the encoder up front.
///
/// # Errors
///
/// Returns [`DecodeError`] on structural corruption or a buffer tagged
/// [`CodecKind::Cascade`] (cascades always stamp the winner).
pub fn try_decode_any(enc: &Encoded) -> Result<Vec<f64>, DecodeError> {
    match enc.codec() {
        CodecKind::Gfc => GfcCodec::default().try_decode(enc),
        CodecKind::ZeroRun => ZeroRunCodec::new().try_decode(enc),
        CodecKind::Alp => AlpCodec::new().try_decode(enc),
        CodecKind::Cascade => Err(DecodeError {
            codec: CodecKind::Cascade,
            segment: 0,
            message: "cascade buffers must carry the winning inner codec",
        }),
    }
}

/// Publishes one cascade pick to the metrics registry: the total
/// `codec.cascade.picks` counter plus a per-winner counter. Counter
/// names must be `&'static str`, hence the match.
pub fn record_cascade_pick(rec: &Recorder, winner: CodecKind) {
    rec.add("codec.cascade.picks", 1);
    rec.add(
        match winner {
            CodecKind::Gfc => "codec.cascade.pick.gfc",
            CodecKind::ZeroRun => "codec.cascade.pick.zero-run",
            CodecKind::Alp => "codec.cascade.pick.alp",
            // Buffers carry the winning inner codec; a cascade tag would
            // be a bug, but a metrics helper is no place to panic.
            CodecKind::Cascade => "codec.cascade.pick.cascade",
        },
        1,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_ids_roundtrip() {
        for kind in CodecKind::ALL {
            assert_eq!(CodecKind::from_id(kind.id()), Some(kind));
            assert_eq!(kind.name().parse::<CodecKind>().unwrap(), kind);
        }
        assert_eq!(CodecKind::from_id(200), None);
    }

    #[test]
    fn kind_parse_aliases_and_errors() {
        assert_eq!("ZeroRun".parse::<CodecKind>().unwrap(), CodecKind::ZeroRun);
        assert_eq!("zero_run".parse::<CodecKind>().unwrap(), CodecKind::ZeroRun);
        assert_eq!(" gfc ".parse::<CodecKind>().unwrap(), CodecKind::Gfc);
        assert!("lz4".parse::<CodecKind>().is_err());
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in CodecKind::ALL {
            let codec = codec_for_kind(kind, 4);
            assert_eq!(codec.kind(), kind);
            let data: Vec<f64> = (0..200).map(|i| (i as f64 * 0.01).cos()).collect();
            let enc = codec.encode(&data);
            let dec = try_decode_any(&enc).unwrap();
            assert_eq!(dec.len(), data.len());
            for (a, b) in data.iter().zip(dec.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn verified_decode_rejects_wrong_crc() {
        let data = vec![0.25f64; 128];
        for kind in CodecKind::ALL {
            let codec = codec_for_kind(kind, 2);
            let enc = codec.encode(&data);
            let crc = value_crc32(&data);
            assert!(codec.try_decode_verified(&enc, crc).is_ok());
            let err = codec.try_decode_verified(&enc, crc ^ 1).unwrap_err();
            assert!(err.message.contains("CRC32"), "{err}");
        }
    }

    #[test]
    fn cascade_tagged_buffers_are_rejected() {
        let enc = Encoded::from_parts(CodecKind::Cascade, 0, vec![]);
        assert!(try_decode_any(&enc).is_err());
    }
}
