//! Constant/zero-run shortcut codec.
//!
//! Pruning proves that many in-flight chunks are all zeros (or a single
//! repeated amplitude): GFC still pays its full residual pass on those,
//! while a run-length scan collapses them to a handful of bytes at near
//! memcpy speed. This codec is that shortcut — the cheapest candidate in
//! the [`CascadeCodec`](crate::cascade::CascadeCodec) and a useful
//! standalone choice for heavily pruned circuits.

use crate::codec::{Codec, CodecKind, DecodeError, Encoded};

/// Maximum values a single run record covers (keeps run lengths in `u32`).
const MAX_RUN: usize = u32::MAX as usize;

/// Run-length encoder over raw `f64` bit patterns: each run is stored as
/// `[u32 length][u64 bits]`, so an all-zero chunk of any size costs 12
/// bytes. Worst case (no repeats) is 12 bytes per value — 1.5× expansion
/// — which the engine's raw-size cap and the cascade's scoring both
/// absorb.
///
/// # Examples
///
/// ```
/// use qgpu_compress::{Codec, ZeroRunCodec};
///
/// let codec = ZeroRunCodec::new();
/// let enc = codec.encode(&[0.0; 65536]);
/// assert_eq!(enc.total_bytes(), 12);
/// assert_eq!(codec.decode(&enc), vec![0.0; 65536]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZeroRunCodec;

impl ZeroRunCodec {
    /// Creates the codec (stateless).
    pub fn new() -> Self {
        ZeroRunCodec
    }
}

impl Codec for ZeroRunCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::ZeroRun
    }

    fn encode(&self, data: &[f64]) -> Encoded {
        let mut payload = Vec::new();
        let mut i = 0usize;
        while i < data.len() {
            let bits = data[i].to_bits();
            let mut run = 1usize;
            while i + run < data.len() && run < MAX_RUN && data[i + run].to_bits() == bits {
                run += 1;
            }
            payload.extend_from_slice(&(run as u32).to_le_bytes());
            payload.extend_from_slice(&bits.to_le_bytes());
            i += run;
        }
        Encoded::from_parts(CodecKind::ZeroRun, data.len(), vec![payload])
    }

    fn try_decode(&self, enc: &Encoded) -> Result<Vec<f64>, DecodeError> {
        let err = |segment: usize, message: &'static str| DecodeError {
            codec: CodecKind::ZeroRun,
            segment,
            message,
        };
        if enc.codec() != CodecKind::ZeroRun {
            return Err(err(0, "buffer was not zero-run encoded"));
        }
        if enc.num_segments() != 1 {
            return Err(err(enc.num_segments(), "zero-run expects one segment"));
        }
        let payload = enc.segment(0);
        if !payload.len().is_multiple_of(12) {
            return Err(err(0, "payload is not a whole number of run records"));
        }
        let mut out = Vec::with_capacity(enc.num_values());
        for rec in payload.chunks_exact(12) {
            let run = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes")) as usize;
            let bits = u64::from_le_bytes(rec[4..12].try_into().expect("8 bytes"));
            if run == 0 {
                return Err(err(0, "zero-length run"));
            }
            if out.len() + run > enc.num_values() {
                return Err(err(0, "runs exceed declared value count"));
            }
            let v = f64::from_bits(bits);
            out.resize(out.len() + run, v);
        }
        if out.len() != enc.num_values() {
            return Err(err(0, "decoded value count does not match metadata"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[f64]) {
        let codec = ZeroRunCodec::new();
        let enc = codec.encode(data);
        let dec = codec.decode(&enc);
        assert_eq!(dec.len(), data.len());
        for (a, b) in data.iter().zip(dec.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_input() {
        roundtrip(&[]);
    }

    #[test]
    fn zeros_collapse_to_one_record() {
        let codec = ZeroRunCodec::new();
        let enc = codec.encode(&vec![0.0; 1 << 16]);
        assert_eq!(enc.total_bytes(), 12);
        roundtrip(&vec![0.0; 1 << 16]);
    }

    #[test]
    fn signed_zeros_are_distinct_runs() {
        let codec = ZeroRunCodec::new();
        let enc = codec.encode(&[0.0, -0.0, 0.0]);
        assert_eq!(enc.total_bytes(), 36);
        roundtrip(&[0.0, -0.0, 0.0]);
    }

    #[test]
    fn nan_payloads_survive() {
        roundtrip(&[f64::from_bits(0x7ff8_dead_beef_0001); 7]);
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let codec = ZeroRunCodec::new();
        let enc = codec.encode(&vec![1.5; 100]);
        let mut seg = enc.segment(0).to_vec();
        seg.pop();
        let broken = Encoded::from_parts(CodecKind::ZeroRun, 100, vec![seg]);
        assert!(codec.try_decode(&broken).is_err());
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let codec = ZeroRunCodec::new();
        let enc = codec.encode(&vec![1.5; 100]);
        let broken = Encoded::from_parts(CodecKind::ZeroRun, 99, enc.into_segments());
        assert!(codec.try_decode(&broken).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn roundtrip_is_bit_exact(
            data in proptest::collection::vec(proptest::num::f64::ANY, 0..400),
        ) {
            let codec = ZeroRunCodec::new();
            let enc = codec.encode(&data);
            let dec = codec.decode(&enc);
            prop_assert_eq!(dec.len(), data.len());
            for (a, b) in data.iter().zip(dec.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn repeated_blocks_compress(
            v in -1.0f64..1.0,
            reps in 64usize..512,
        ) {
            let codec = ZeroRunCodec::new();
            let data = vec![v; reps];
            let enc = codec.encode(&data);
            prop_assert_eq!(enc.total_bytes(), 12);
        }
    }
}
