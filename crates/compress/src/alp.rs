//! ALP-style adaptive lossless floating-point codec.
//!
//! ALP (Afroozeh & Boncz, "ALP: Adaptive Lossless floating-Point
//! compression") observes that many stored doubles are decimals in
//! disguise: `v * 10^e` rounds to an integer that divides back to the
//! exact same bit pattern. Such values pack into a frame-of-reference +
//! bit-width integer stream; the stragglers are kept verbatim as
//! *exceptions*. This module implements the single-exponent variant:
//! per block it probes a sampled stride of values for the exponent that
//! round-trips the most of them, bit-packs the resulting integers, and
//! patches the exceptions on decode.
//!
//! Quantum amplitudes are usually irrational, so ALP degrades to an
//! exception-heavy near-raw stream on generic states — but collapses
//! measurement outcomes, basis states, and synthetic/decimal workloads
//! dramatically, which is exactly the niche the
//! [`CascadeCodec`](crate::cascade::CascadeCodec) probes it for.

use crate::codec::{Codec, CodecKind, DecodeError, Encoded};

/// Values per independently coded block.
const BLOCK: usize = 1024;

/// Largest decimal exponent probed (10^14 keeps `v * 10^e` exact for the
/// magnitudes amplitudes take).
const MAX_EXP: usize = 14;

/// At most this many values are probed per block when choosing the
/// exponent; the full block is still verified value-by-value.
const SAMPLE: usize = 64;

/// `|rounded|` bound so the integer stream stays well inside `i64`.
const MAX_MAGNITUDE: f64 = (1u64 << 51) as f64;

const POW10: [f64; MAX_EXP + 1] = [
    1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14,
];

/// The adaptive decimal-scaling codec. Stateless; block and probe sizes
/// are compile-time constants chosen to mirror the reference design.
///
/// # Examples
///
/// ```
/// use qgpu_compress::{AlpCodec, Codec};
///
/// let codec = AlpCodec::new();
/// let decimals: Vec<f64> = (0..512).map(|i| i as f64 * 0.01).collect();
/// let enc = codec.encode(&decimals);
/// assert!(enc.total_bytes() < 8 * decimals.len() / 2);
/// assert_eq!(codec.decode(&enc), decimals);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlpCodec;

impl AlpCodec {
    /// Creates the codec (stateless).
    pub fn new() -> Self {
        AlpCodec
    }
}

/// Does `v` survive `round(v * 10^e) / 10^e` bit-exactly?
fn encode_value(v: f64, e: usize) -> Option<i64> {
    let scaled = v * POW10[e];
    if !scaled.is_finite() || scaled.abs() > MAX_MAGNITUDE {
        return None;
    }
    let d = scaled.round();
    let i = d as i64;
    if ((i as f64) / POW10[e]).to_bits() == v.to_bits() {
        Some(i)
    } else {
        None
    }
}

fn best_exponent(block: &[f64]) -> usize {
    // An odd stride so the probe never aliases with power-of-two value
    // patterns (e.g. every 16th element of `i * 0.25` is an integer,
    // which would fool the exponent search into picking e = 0).
    let stride = ((block.len() / SAMPLE).max(1)) | 1;
    let mut best = (0usize, 0usize);
    for e in 0..=MAX_EXP {
        let hits = block
            .iter()
            .step_by(stride)
            .filter(|&&v| encode_value(v, e).is_some())
            .count();
        if hits > best.1 {
            best = (e, hits);
        }
    }
    best.0
}

fn pack_bits(vals: &[u64], width: usize, out: &mut Vec<u8>) {
    let start = out.len();
    out.resize(start + (vals.len() * width).div_ceil(8), 0);
    let bits = &mut out[start..];
    let mut pos = 0usize;
    for &v in vals {
        for b in 0..width {
            if (v >> b) & 1 == 1 {
                bits[(pos + b) >> 3] |= 1 << ((pos + b) & 7);
            }
        }
        pos += width;
    }
}

fn unpack_bits(bytes: &[u8], count: usize, width: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    let mut pos = 0usize;
    for _ in 0..count {
        let mut v = 0u64;
        for b in 0..width {
            if (bytes[(pos + b) >> 3] >> ((pos + b) & 7)) & 1 == 1 {
                v |= 1 << b;
            }
        }
        out.push(v);
        pos += width;
    }
    out
}

/// Block layout:
/// `[u16 n][u8 exponent][u8 bit_width][i64 base][u16 n_exceptions]`
/// `[packed deltas: ceil(n*width/8) bytes][exceptions: (u16 pos, u64 bits)*]`
fn encode_block(block: &[f64], payload: &mut Vec<u8>) {
    let e = best_exponent(block);
    let mut ints = Vec::with_capacity(block.len());
    let mut exceptions: Vec<(u16, u64)> = Vec::new();
    for (i, &v) in block.iter().enumerate() {
        match encode_value(v, e) {
            Some(d) => ints.push(Some(d)),
            None => {
                exceptions.push((i as u16, v.to_bits()));
                ints.push(None);
            }
        }
    }
    let base = ints.iter().flatten().copied().min().unwrap_or(0);
    // Exception slots carry the base itself (delta 0) so the packed
    // stream stays dense; decode patches them from the exception list.
    let deltas: Vec<u64> = ints
        .iter()
        .map(|d| d.unwrap_or(base).wrapping_sub(base) as u64)
        .collect();
    let width = deltas
        .iter()
        .map(|&d| 64 - d.leading_zeros() as usize)
        .max()
        .unwrap_or(0);

    payload.extend_from_slice(&(block.len() as u16).to_le_bytes());
    payload.push(e as u8);
    payload.push(width as u8);
    payload.extend_from_slice(&base.to_le_bytes());
    payload.extend_from_slice(&(exceptions.len() as u16).to_le_bytes());
    pack_bits(&deltas, width, payload);
    for (pos, bits) in exceptions {
        payload.extend_from_slice(&pos.to_le_bytes());
        payload.extend_from_slice(&bits.to_le_bytes());
    }
}

fn decode_block(payload: &[u8], out: &mut Vec<f64>) -> Result<usize, &'static str> {
    if payload.len() < 14 {
        return Err("block header truncated");
    }
    let n = u16::from_le_bytes(payload[0..2].try_into().expect("2 bytes")) as usize;
    let e = payload[2] as usize;
    let width = payload[3] as usize;
    let base = i64::from_le_bytes(payload[4..12].try_into().expect("8 bytes"));
    let n_exc = u16::from_le_bytes(payload[12..14].try_into().expect("2 bytes")) as usize;
    if n == 0 || n > BLOCK {
        return Err("invalid block value count");
    }
    if e > MAX_EXP || width > 64 || n_exc > n {
        return Err("invalid block parameters");
    }
    let packed_len = (n * width).div_ceil(8);
    let total = 14 + packed_len + n_exc * 10;
    if payload.len() < total {
        return Err("block payload truncated");
    }
    let deltas = unpack_bits(&payload[14..14 + packed_len], n, width);
    let start = out.len();
    for d in deltas {
        let i = base.wrapping_add(d as i64);
        out.push((i as f64) / POW10[e]);
    }
    let mut exc = &payload[14 + packed_len..total];
    for _ in 0..n_exc {
        let pos = u16::from_le_bytes(exc[0..2].try_into().expect("2 bytes")) as usize;
        let bits = u64::from_le_bytes(exc[2..10].try_into().expect("8 bytes"));
        if pos >= n {
            return Err("exception position out of range");
        }
        out[start + pos] = f64::from_bits(bits);
        exc = &exc[10..];
    }
    Ok(total)
}

impl Codec for AlpCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Alp
    }

    fn encode(&self, data: &[f64]) -> Encoded {
        let mut payload = Vec::new();
        for block in data.chunks(BLOCK) {
            encode_block(block, &mut payload);
        }
        Encoded::from_parts(CodecKind::Alp, data.len(), vec![payload])
    }

    fn try_decode(&self, enc: &Encoded) -> Result<Vec<f64>, DecodeError> {
        let err = |message: &'static str| DecodeError {
            codec: CodecKind::Alp,
            segment: 0,
            message,
        };
        if enc.codec() != CodecKind::Alp {
            return Err(err("buffer was not alp encoded"));
        }
        if enc.num_segments() != 1 {
            return Err(err("alp expects one segment"));
        }
        let mut payload = enc.segment(0);
        let mut out = Vec::with_capacity(enc.num_values());
        while !payload.is_empty() {
            if out.len() >= enc.num_values() {
                return Err(err("trailing payload bytes"));
            }
            let used = decode_block(payload, &mut out).map_err(err)?;
            payload = &payload[used..];
        }
        if out.len() != enc.num_values() {
            return Err(err("decoded value count does not match metadata"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[f64]) {
        let codec = AlpCodec::new();
        let enc = codec.encode(data);
        let dec = codec.decode(&enc);
        assert_eq!(dec.len(), data.len());
        for (a, b) in data.iter().zip(dec.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_input() {
        roundtrip(&[]);
    }

    #[test]
    fn decimals_pack_tightly() {
        let codec = AlpCodec::new();
        let data: Vec<f64> = (0..4096).map(|i| i as f64 * 0.25).collect();
        let enc = codec.encode(&data);
        assert!(
            enc.total_bytes() < 8 * data.len() / 2,
            "{} bytes",
            enc.total_bytes()
        );
        roundtrip(&data);
    }

    #[test]
    fn zeros_pack_to_headers_only() {
        let codec = AlpCodec::new();
        let enc = codec.encode(&vec![0.0; 4096]);
        // width 0, no exceptions: 14 bytes per 1024-value block.
        assert_eq!(enc.total_bytes(), 14 * 4);
        roundtrip(&vec![0.0; 4096]);
    }

    #[test]
    fn irrational_values_become_exceptions() {
        let data: Vec<f64> = (0..512).map(|i| ((i + 1) as f64).sqrt().recip()).collect();
        roundtrip(&data);
    }

    #[test]
    fn special_values_roundtrip() {
        roundtrip(&[
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef),
        ]);
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let codec = AlpCodec::new();
        let enc = codec.encode(&vec![1.25; 100]);
        let mut seg = enc.segment(0).to_vec();
        seg.pop();
        let broken = Encoded::from_parts(CodecKind::Alp, 100, vec![seg]);
        assert!(codec.try_decode(&broken).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn roundtrip_is_bit_exact(
            data in proptest::collection::vec(proptest::num::f64::ANY, 0..2200),
        ) {
            let codec = AlpCodec::new();
            let enc = codec.encode(&data);
            let dec = codec.decode(&enc);
            prop_assert_eq!(dec.len(), data.len());
            for (a, b) in data.iter().zip(dec.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn corrupted_blocks_error_not_panic(
            data in proptest::collection::vec(-1.0f64..1.0, 32..300),
            cut in 1usize..32,
        ) {
            let codec = AlpCodec::new();
            let enc = codec.encode(&data);
            let mut seg = enc.segment(0).to_vec();
            let cut = cut % seg.len().max(1);
            seg.truncate(cut);
            let broken = Encoded::from_parts(CodecKind::Alp, data.len(), vec![seg]);
            prop_assert!(codec.try_decode(&broken).is_err());
        }
    }
}
