//! The GFC lossless double-precision compressor.
//!
//! Faithful reimplementation of the algorithm Q-GPU runs as GPU kernels
//! (paper §IV-D and Figure 11): segments map to warps, micro-chunks of 32
//! values map to warp lanes, and each residual is stored as a 4-bit
//! sign/length prefix plus its non-zero low-order bytes.

use std::fmt;

use qgpu_math::Complex64;
use qgpu_obs::{span_opt, Recorder, Stage, Track};
use serde::{Deserialize, Serialize};

use crate::codec::{amps_as_f64, Codec, CodecKind, DecodeError, Encoded};
use crate::stats::CompressionStats;

// The CRC seals predate the codec layer and historically lived here;
// re-exported so `gfc::value_crc32` callers keep working.
pub use crate::codec::{amplitude_crc32, value_crc32};

/// Error returned when a compressed buffer cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeGfcError {
    /// Index of the offending segment.
    pub segment: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for DecodeGfcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt GFC segment {}: {}", self.segment, self.message)
    }
}

impl std::error::Error for DecodeGfcError {}

/// Number of values per micro-chunk — one per thread of a 32-lane warp.
pub const MICRO_CHUNK: usize = 32;

/// A compressed buffer: independently compressed segments plus enough
/// metadata to restore the original length.
///
/// # Examples
///
/// ```
/// use qgpu_compress::GfcCodec;
///
/// let codec = GfcCodec::new(2);
/// let c = codec.compress(&[0.0; 100]);
/// assert_eq!(c.num_values(), 100);
/// assert!(c.total_bytes() < 800);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Compressed {
    num_values: usize,
    segments: Vec<Vec<u8>>,
}

impl Compressed {
    /// Number of `f64` values the buffer decodes to.
    pub fn num_values(&self) -> usize {
        self.num_values
    }

    /// Number of independently compressed segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Total compressed payload in bytes.
    pub fn total_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// Raw bytes of segment `i` (for persistence formats).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn segment(&self, i: usize) -> &[u8] {
        &self.segments[i]
    }

    /// Reassembles a buffer from persisted parts. `num_values` is the
    /// decoded `f64` count the buffer must produce; decoding validates it.
    pub fn from_parts(num_values: usize, segments: Vec<Vec<u8>>) -> Self {
        Compressed {
            num_values,
            segments,
        }
    }

    /// Compression statistics against the uncompressed size.
    pub fn stats(&self) -> CompressionStats {
        CompressionStats::new(self.num_values * 8, self.total_bytes())
    }

    /// Decomposes into `(num_values, segments)` for codec-agnostic
    /// [`Encoded`] framing.
    pub fn into_parts(self) -> (usize, Vec<Vec<u8>>) {
        (self.num_values, self.segments)
    }
}

/// The GFC codec: configuration (segment count) plus compress/decompress
/// entry points.
///
/// The segment count trades parallelism (each segment is one warp's work)
/// against ratio (each segment restarts the residual predictor). The
/// paper chooses it "to match the GPU parallelism".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GfcCodec {
    num_segments: usize,
}

impl GfcCodec {
    /// Creates a codec with the given segment count.
    ///
    /// # Panics
    ///
    /// Panics if `num_segments == 0`.
    pub fn new(num_segments: usize) -> Self {
        assert!(num_segments > 0, "need at least one segment");
        GfcCodec { num_segments }
    }

    /// The configured segment count.
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// Compresses a slice of doubles.
    pub fn compress(&self, data: &[f64]) -> Compressed {
        let seg_len = segment_len(data.len(), self.num_segments);
        let segments = if seg_len == 0 {
            vec![compress_segment(data)]
        } else {
            data.chunks(seg_len).map(compress_segment).collect()
        };
        Compressed {
            num_values: data.len(),
            segments,
        }
    }

    /// Compresses a complex-amplitude slice (viewed as interleaved
    /// `re, im` doubles, exactly how the simulator stores chunks).
    pub fn compress_amplitudes(&self, amps: &[Complex64]) -> Compressed {
        self.compress(amps_as_f64(amps))
    }

    /// [`GfcCodec::compress_amplitudes`] under observation: records a
    /// [`Stage::Compress`] span and the per-chunk compression ratio (×100,
    /// into the `compress.ratio.x100` histogram). With `rec == None` this
    /// is exactly `compress_amplitudes` — no clock reads.
    pub fn compress_amplitudes_observed(
        &self,
        amps: &[Complex64],
        rec: Option<&Recorder>,
    ) -> Compressed {
        let _g = span_opt(rec, Track::Main, Stage::Compress, "gfc.compress");
        let compressed = self.compress_amplitudes(amps);
        if let Some(r) = rec {
            let raw = std::mem::size_of_val(amps) as u64;
            let out = compressed.total_bytes().max(1) as u64;
            r.observe("compress.ratio.x100", raw * 100 / out);
        }
        compressed
    }

    /// Decompresses back into doubles.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is corrupt; use [`GfcCodec::try_decompress`]
    /// to handle untrusted data.
    pub fn decompress(&self, c: &Compressed) -> Vec<f64> {
        self.try_decompress(c).expect("corrupt compressed buffer")
    }

    /// Decompresses back into doubles, reporting corruption as an error.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeGfcError`] when a segment header is truncated, the
    /// declared lengths disagree with the payload, or the total value
    /// count does not match the buffer's metadata.
    pub fn try_decompress(&self, c: &Compressed) -> Result<Vec<f64>, DecodeGfcError> {
        let mut out = Vec::with_capacity(c.num_values);
        for (i, seg) in c.segments.iter().enumerate() {
            decompress_segment(seg, &mut out).map_err(|message| DecodeGfcError {
                segment: i,
                message,
            })?;
        }
        if out.len() != c.num_values {
            return Err(DecodeGfcError {
                segment: c.segments.len(),
                message: "decoded value count does not match metadata",
            });
        }
        Ok(out)
    }

    /// Decompresses into complex amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is corrupt or holds an odd number of doubles;
    /// use [`GfcCodec::try_decompress_amplitudes`] for untrusted data.
    pub fn decompress_amplitudes(&self, c: &Compressed) -> Vec<Complex64> {
        self.try_decompress_amplitudes(c)
            .expect("corrupt compressed buffer")
    }

    /// [`GfcCodec::decompress_amplitudes`] under observation: records a
    /// [`Stage::Decompress`] span.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is corrupt, like
    /// [`GfcCodec::decompress_amplitudes`].
    pub fn decompress_amplitudes_observed(
        &self,
        c: &Compressed,
        rec: Option<&Recorder>,
    ) -> Vec<Complex64> {
        let _g = span_opt(rec, Track::Main, Stage::Decompress, "gfc.decompress");
        self.decompress_amplitudes(c)
    }

    /// Decompresses and verifies the decoded content against the CRC32
    /// computed at encode time (see [`value_crc32`]). The structural
    /// checks in [`GfcCodec::try_decompress`] reject most damage; the CRC
    /// closes the gap where corrupted bytes still parse into the right
    /// number of values — without it those would surface as silently
    /// wrong amplitudes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeGfcError`] on structural corruption or a content
    /// CRC mismatch.
    pub fn try_decompress_verified(
        &self,
        c: &Compressed,
        expected_crc: u32,
    ) -> Result<Vec<f64>, DecodeGfcError> {
        let out = self.try_decompress(c)?;
        if value_crc32(&out) != expected_crc {
            return Err(DecodeGfcError {
                segment: c.segments.len(),
                message: "decoded content fails CRC32 verification",
            });
        }
        Ok(out)
    }

    /// Amplitude counterpart of [`GfcCodec::try_decompress_verified`]:
    /// the CRC is over the interleaved doubles ([`amplitude_crc32`]).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeGfcError`] on structural corruption, an odd double
    /// count, or a content CRC mismatch.
    pub fn try_decompress_amplitudes_verified(
        &self,
        c: &Compressed,
        expected_crc: u32,
    ) -> Result<Vec<Complex64>, DecodeGfcError> {
        let amps = self.try_decompress_amplitudes(c)?;
        if amplitude_crc32(&amps) != expected_crc {
            return Err(DecodeGfcError {
                segment: c.segments.len(),
                message: "decoded content fails CRC32 verification",
            });
        }
        Ok(amps)
    }

    /// Decompresses into complex amplitudes, reporting corruption.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeGfcError`] on corrupt buffers or an odd number of
    /// decoded doubles.
    pub fn try_decompress_amplitudes(
        &self,
        c: &Compressed,
    ) -> Result<Vec<Complex64>, DecodeGfcError> {
        let doubles = self.try_decompress(c)?;
        if doubles.len() % 2 != 0 {
            return Err(DecodeGfcError {
                segment: c.segments.len(),
                message: "odd number of doubles for a complex buffer",
            });
        }
        Ok(doubles
            .chunks_exact(2)
            .map(|p| Complex64::new(p[0], p[1]))
            .collect())
    }
}

impl Default for GfcCodec {
    /// 32 segments — enough warps to saturate a small GPU.
    fn default() -> Self {
        GfcCodec::new(32)
    }
}

impl Codec for GfcCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Gfc
    }

    /// Identical byte stream to [`GfcCodec::compress`] — the [`Encoded`]
    /// segments *are* the [`Compressed`] segments, so trait callers see
    /// the exact sizes (and golden fingerprints) the hardwired pipeline
    /// produced.
    fn encode(&self, data: &[f64]) -> Encoded {
        let (num_values, segments) = self.compress(data).into_parts();
        Encoded::from_parts(CodecKind::Gfc, num_values, segments)
    }

    fn try_decode(&self, enc: &Encoded) -> Result<Vec<f64>, DecodeError> {
        if enc.codec() != CodecKind::Gfc {
            return Err(DecodeError {
                codec: CodecKind::Gfc,
                segment: 0,
                message: "buffer was not gfc encoded",
            });
        }
        let mut out = Vec::with_capacity(enc.num_values());
        for i in 0..enc.num_segments() {
            decompress_segment(enc.segment(i), &mut out).map_err(|message| DecodeError {
                codec: CodecKind::Gfc,
                segment: i,
                message,
            })?;
        }
        if out.len() != enc.num_values() {
            return Err(DecodeError {
                codec: CodecKind::Gfc,
                segment: enc.num_segments(),
                message: "decoded value count does not match metadata",
            });
        }
        Ok(out)
    }
}

/// Rounds the per-segment length up to a micro-chunk multiple.
fn segment_len(total: usize, num_segments: usize) -> usize {
    let raw = total.div_ceil(num_segments);
    raw.div_ceil(MICRO_CHUNK) * MICRO_CHUNK
}

fn compress_segment(values: &[f64]) -> Vec<u8> {
    // Layout: [u32 count][u32 payload_len][packed 4-bit headers][payload].
    let n = values.len();
    let mut headers = Vec::with_capacity(n.div_ceil(2));
    let mut payload: Vec<u8> = Vec::with_capacity(n * 4);
    let mut pending_header: Option<u8> = None;

    for (i, &v) in values.iter().enumerate() {
        // Lane j of micro-chunk k predicts from lane j of micro-chunk k-1.
        let prev = if i >= MICRO_CHUNK {
            values[i - MICRO_CHUNK].to_bits()
        } else {
            0
        };
        let cur = v.to_bits();
        let residual = cur.wrapping_sub(prev) as i64;
        let (sign, magnitude) = if residual < 0 {
            (1u8, residual.unsigned_abs())
        } else {
            (0u8, residual as u64)
        };
        // Leading-zero *bytes* of the magnitude, clamped to 7 so at least
        // one payload byte is always written for the value.
        let lzb = (magnitude.leading_zeros() / 8).min(7) as u8;
        let header = (sign << 3) | lzb;
        match pending_header.take() {
            None => pending_header = Some(header),
            Some(first) => headers.push((first << 4) | header),
        }
        let keep = 8 - lzb as usize;
        payload.extend_from_slice(&magnitude.to_le_bytes()[..keep]);
    }
    if let Some(first) = pending_header {
        headers.push(first << 4);
    }

    let mut out = Vec::with_capacity(8 + headers.len() + payload.len());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&headers);
    out.extend_from_slice(&payload);
    out
}

fn decompress_segment(seg: &[u8], out: &mut Vec<f64>) -> Result<(), &'static str> {
    if seg.len() < 8 {
        return Err("segment shorter than its header");
    }
    let n = u32::from_le_bytes(seg[0..4].try_into().expect("4 bytes")) as usize;
    let payload_len = u32::from_le_bytes(seg[4..8].try_into().expect("4 bytes")) as usize;
    let header_len = n.div_ceil(2);
    if seg.len() != 8 + header_len + payload_len {
        return Err("declared lengths disagree with segment size");
    }
    let headers = &seg[8..8 + header_len];
    let payload = &seg[8 + header_len..];

    let start = out.len();
    let mut pos = 0usize;
    for i in 0..n {
        let packed = headers[i / 2];
        let header = if i % 2 == 0 {
            packed >> 4
        } else {
            packed & 0x0f
        };
        let sign = (header >> 3) & 1;
        let lzb = (header & 0x7) as usize;
        let keep = 8 - lzb;
        if pos + keep > payload.len() {
            return Err("payload truncated");
        }
        let mut bytes = [0u8; 8];
        bytes[..keep].copy_from_slice(&payload[pos..pos + keep]);
        pos += keep;
        let magnitude = u64::from_le_bytes(bytes);
        let residual = if sign == 1 {
            (magnitude as i64).wrapping_neg()
        } else {
            magnitude as i64
        };
        let prev = if i >= MICRO_CHUNK {
            out[start + i - MICRO_CHUNK].to_bits()
        } else {
            0
        };
        let cur = prev.wrapping_add(residual as u64);
        out.push(f64::from_bits(cur));
    }
    if pos != payload.len() {
        return Err("trailing payload bytes");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(codec: &GfcCodec, data: &[f64]) {
        let c = codec.compress(data);
        let d = codec.decompress(&c);
        assert_eq!(d.len(), data.len());
        for (a, b) in data.iter().zip(d.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "lossless roundtrip violated");
        }
    }

    #[test]
    fn empty_input() {
        roundtrip(&GfcCodec::new(4), &[]);
    }

    #[test]
    fn zeros_compress_extremely_well() {
        let codec = GfcCodec::new(4);
        let data = vec![0.0f64; 4096];
        let c = codec.compress(&data);
        // 4 bits header + 1 byte payload per value + segment overhead.
        assert!(
            c.total_bytes() < data.len() * 2,
            "{} bytes",
            c.total_bytes()
        );
        roundtrip(&codec, &data);
    }

    #[test]
    fn smooth_data_compresses() {
        let codec = GfcCodec::default();
        let data: Vec<f64> = (0..8192).map(|i| (i as f64 * 1e-4).sin() * 0.25).collect();
        let c = codec.compress(&data);
        assert!(
            c.total_bytes() < 8 * data.len(),
            "smooth data should compress: {} vs {}",
            c.total_bytes(),
            8 * data.len()
        );
        roundtrip(&codec, &data);
    }

    #[test]
    fn random_data_does_not_explode() {
        let mut rng = StdRng::seed_from_u64(11);
        let data: Vec<f64> = (0..4096).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let codec = GfcCodec::new(8);
        let c = codec.compress(&data);
        // Worst case: 0.5 byte header + 8 bytes payload per value + overhead.
        assert!(c.total_bytes() <= data.len() * 9 + 8 * 8);
        roundtrip(&codec, &data);
    }

    #[test]
    fn special_values_roundtrip() {
        let data = vec![
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::EPSILON,
        ];
        roundtrip(&GfcCodec::new(1), &data);
    }

    #[test]
    fn nan_payload_preserved() {
        let data = vec![f64::from_bits(0x7ff8_0000_dead_beef), 1.0, f64::NAN];
        let codec = GfcCodec::new(1);
        let c = codec.compress(&data);
        let d = codec.decompress(&c);
        for (a, b) in data.iter().zip(d.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn segment_count_respected() {
        let codec = GfcCodec::new(8);
        let data = vec![1.0; 1024];
        let c = codec.compress(&data);
        assert_eq!(c.num_segments(), 8);
        // 1024 / 8 = 128 values per segment, a micro-chunk multiple.
        roundtrip(&codec, &data);
    }

    #[test]
    fn ragged_tail_segment() {
        // Length not divisible by segments * MICRO_CHUNK.
        let data: Vec<f64> = (0..1000).map(|i| i as f64 * 0.125).collect();
        roundtrip(&GfcCodec::new(4), &data);
        roundtrip(&GfcCodec::new(3), &data);
        roundtrip(&GfcCodec::new(7), &data);
    }

    #[test]
    fn more_segments_than_values() {
        let data = vec![2.5; 5];
        roundtrip(&GfcCodec::new(64), &data);
    }

    #[test]
    fn complex_amplitudes_roundtrip() {
        let amps: Vec<Complex64> = (0..512)
            .map(|i| Complex64::new((i as f64).cos() * 0.1, (i as f64).sin() * 0.1))
            .collect();
        let codec = GfcCodec::new(4);
        let c = codec.compress_amplitudes(&amps);
        let d = codec.decompress_amplitudes(&c);
        assert_eq!(amps.len(), d.len());
        for (a, b) in amps.iter().zip(d.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn stats_ratio() {
        let codec = GfcCodec::new(2);
        let c = codec.compress(&vec![0.0; 1024]);
        let stats = c.stats();
        assert!(stats.ratio() > 4.0, "ratio = {}", stats.ratio());
    }

    #[test]
    fn repeated_value_stream() {
        // Identical values across micro-chunks give zero residuals.
        let codec = GfcCodec::new(1);
        let data = vec![std::f64::consts::PI; 2048];
        let c = codec.compress(&data);
        // First micro-chunk stores full values; the rest collapse.
        assert!(c.total_bytes() < 2048 * 2 + 32 * 8);
        roundtrip(&codec, &data);
    }

    #[test]
    fn try_decompress_reports_segment_index() {
        let codec = GfcCodec::new(4);
        let mut c = codec.compress(&vec![1.0; 256]);
        c.segments[2].pop();
        let err = codec.try_decompress(&c).expect_err("corrupt");
        assert_eq!(err.segment, 2);
        assert!(err.to_string().contains("segment 2"));
    }

    #[test]
    fn try_decompress_detects_count_mismatch() {
        let codec = GfcCodec::new(1);
        let mut c = codec.compress(&vec![0.5; 64]);
        // Drop a whole segment worth of values by replacing with an empty
        // but well-formed segment (count 0, payload 0).
        c.segments[0] = vec![0, 0, 0, 0, 0, 0, 0, 0];
        let err = codec.try_decompress(&c).expect_err("count mismatch");
        assert!(err.message.contains("count"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn roundtrip_is_bit_exact(
            data in proptest::collection::vec(
                proptest::num::f64::ANY, 0..600),
            segs in 1usize..16,
        ) {
            let codec = GfcCodec::new(segs);
            let c = codec.compress(&data);
            let d = codec.decompress(&c);
            prop_assert_eq!(d.len(), data.len());
            for (a, b) in data.iter().zip(d.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn corrupted_buffers_are_rejected_not_miscoded(
            data in proptest::collection::vec(-1.0f64..1.0, 32..300),
            flip_byte in 0usize..64,
        ) {
            let codec = GfcCodec::new(2);
            let mut c = codec.compress(&data);
            // Truncate the first segment: must error, never panic or
            // silently decode.
            if !c.segments[0].is_empty() {
                let cut = flip_byte % c.segments[0].len();
                c.segments[0].truncate(cut);
                prop_assert!(codec.try_decompress(&c).is_err());
            }
        }

        #[test]
        fn compressed_size_bounded(
            data in proptest::collection::vec(-1.0f64..1.0, 0..600),
        ) {
            let codec = GfcCodec::default();
            let c = codec.compress(&data);
            // Never more than 9 bytes per value plus per-segment overhead.
            prop_assert!(c.total_bytes() <= data.len() * 9 + 9 * c.num_segments());
        }
    }
}
