//! Lossless floating-point compression for non-zero state amplitudes.
//!
//! Q-GPU compresses updated chunks on the GPU before copying them back to
//! the host, using the GFC algorithm (O'Neil & Burtscher, *Floating-point
//! data compression at 75 GB/s on a GPU*). This crate implements GFC
//! bit-exactly:
//!
//! * a chunk is split into [`segments`](gfc::GfcCodec) (one per warp in
//!   the paper's Figure 11), compressed independently;
//! * each segment is processed in *micro-chunks* of 32 doubles (one per
//!   warp lane); each lane subtracts its value in the previous micro-chunk
//!   as a 64-bit integer residual;
//! * each residual is encoded as a 4-bit prefix (1 sign bit + 3 bits of
//!   leading-zero-byte count) followed by the remaining bytes.
//!
//! The [`residual`] module reproduces the compressibility analysis of the
//! paper's Figure 10.
//!
//! # Examples
//!
//! ```
//! use qgpu_compress::gfc::GfcCodec;
//!
//! let codec = GfcCodec::new(4);
//! let data: Vec<f64> = (0..256).map(|i| 1.0 + i as f64 * 1e-6).collect();
//! let compressed = codec.compress(&data);
//! assert!(compressed.total_bytes() < 8 * data.len());
//! assert_eq!(codec.decompress(&compressed), data);
//! ```

pub mod gfc;
pub mod residual;
pub mod stats;

pub use gfc::{amplitude_crc32, value_crc32, Compressed, GfcCodec};
pub use stats::CompressionStats;
