//! Lossless floating-point compression for non-zero state amplitudes.
//!
//! Q-GPU compresses updated chunks on the GPU before copying them back to
//! the host, using the GFC algorithm (O'Neil & Burtscher, *Floating-point
//! data compression at 75 GB/s on a GPU*). This crate implements GFC
//! bit-exactly:
//!
//! * a chunk is split into [`segments`](gfc::GfcCodec) (one per warp in
//!   the paper's Figure 11), compressed independently;
//! * each segment is processed in *micro-chunks* of 32 doubles (one per
//!   warp lane); each lane subtracts its value in the previous micro-chunk
//!   as a 64-bit integer residual;
//! * each residual is encoded as a 4-bit prefix (1 sign bit + 3 bits of
//!   leading-zero-byte count) followed by the remaining bytes.
//!
//! GFC is one implementor of the crate's [`Codec`] trait (see [`codec`]),
//! which also covers the [`zero_run`] shortcut for pruned chunks, the
//! [`alp`] adaptive decimal coder, and the sampling [`cascade`] that
//! scores the candidates per chunk and delegates to the winner.
//!
//! The [`residual`] module reproduces the compressibility analysis of the
//! paper's Figure 10.
//!
//! # Examples
//!
//! ```
//! use qgpu_compress::gfc::GfcCodec;
//!
//! let codec = GfcCodec::new(4);
//! let data: Vec<f64> = (0..256).map(|i| 1.0 + i as f64 * 1e-6).collect();
//! let compressed = codec.compress(&data);
//! assert!(compressed.total_bytes() < 8 * data.len());
//! assert_eq!(codec.decompress(&compressed), data);
//! ```
//!
//! Codec-agnostic callers hold a `dyn Codec` instead:
//!
//! ```
//! use qgpu_compress::{codec_for_kind, try_decode_any, CodecKind};
//!
//! let codec = codec_for_kind(CodecKind::Cascade, 4);
//! let enc = codec.encode(&vec![0.0; 4096]);
//! assert_eq!(enc.codec(), CodecKind::ZeroRun); // sampled pick
//! assert_eq!(try_decode_any(&enc).unwrap(), vec![0.0; 4096]);
//! ```

pub mod alp;
pub mod cascade;
pub mod codec;
pub mod gfc;
pub mod residual;
pub mod stats;
pub mod zero_run;

pub use alp::AlpCodec;
pub use cascade::CascadeCodec;
pub use codec::{
    amplitude_crc32, codec_for_kind, record_cascade_pick, try_decode_any, value_crc32, Codec,
    CodecKind, DecodeError, Encoded,
};
pub use gfc::{Compressed, GfcCodec};
pub use stats::CompressionStats;
pub use zero_run::ZeroRunCodec;
