//! Minimal, dependency-free stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the proptest API this workspace uses: the
//! `proptest!` macro (with optional `#![proptest_config(..)]`), range and
//! tuple strategies, `prop_map`/`prop_filter`, `prop_oneof!`,
//! `collection::vec`, `num::f64::ANY`, `any::<T>()`, the `prop_assert*`
//! macro family, and the low-level `TestRunner::run` entry point.
//!
//! Differences from the real crate, by design:
//! - no shrinking — a failing case reports its inputs' seed and case index;
//! - sampling is purely random (seeded deterministically per test name), so
//!   runs are reproducible but regression files are not consulted.

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod num;

pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Cap on rejected cases (filters/`prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The macro heart of the crate: expands each `fn name(pat in strategy, ..)`
/// item into a `#[test]` that samples the strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            $crate::test_runner::run_proptest(
                &__config,
                stringify!($name),
                &__strategy,
                |__values| {
                    let ($($pat,)+) = __values;
                    let _ = $body;
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Union of heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($item)),+
        ])
    };
}
