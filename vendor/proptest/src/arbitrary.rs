//! `any::<T>()` support for the primitive types this workspace samples.

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;

pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-bit-width uniform strategy for a primitive type.
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                Ok(rng.next_u64() as $t)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> Result<bool, Rejection> {
        Ok(rng.next_u64() & 1 == 1)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(core::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> Result<f64, Rejection> {
        crate::num::f64::ANY.sample(rng)
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(core::marker::PhantomData)
    }
}
