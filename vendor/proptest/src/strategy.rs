//! Strategy trait and combinators.

use crate::test_runner::TestRng;

/// A sample was rejected (filter failed, assumption violated); the runner
/// retries with fresh randomness.
#[derive(Debug)]
pub struct Rejection;

/// Something that can produce random values of an associated type.
///
/// Unlike real proptest there is no shrinking: `sample` directly yields a
/// value (or a rejection to be retried).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        let _ = whence.into();
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// Type-erased strategy (closure-boxed rather than trait-object-boxed).
#[allow(clippy::type_complexity)]
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> Result<T, Rejection>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        (self.0)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.inner.sample(rng).map(&self.f)
    }
}

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        let value = self.inner.sample(rng)?;
        if (self.f)(&value) {
            Ok(value)
        } else {
            Err(Rejection)
        }
    }
}

/// Uniform choice between boxed strategies — what `prop_oneof!` builds.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        let idx = rng.gen_usize(self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty strategy range");
                let v = (rng.next_u64() as u128) % (span as u128);
                Ok((self.start as i128 + v as i128) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                let (start, end) = (*self.start(), *self.end());
                let span = (end as i128) - (start as i128) + 1;
                assert!(span > 0, "empty strategy range");
                let v = (rng.next_u64() as u128) % (span as u128);
                Ok((start as i128 + v as i128) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                assert!(self.start < self.end, "empty strategy range");
                Ok(self.start + (rng.gen_unit_f64() as $t) * (self.end - self.start))
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                Ok(start + (rng.gen_unit_f64() as $t) * (end - start))
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                let ($($name,)+) = self;
                Ok(($($name.sample(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
