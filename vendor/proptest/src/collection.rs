//! `proptest::collection::vec` support.

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;

/// Accepted length specifications for [`vec()`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max: len + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
        let span = self.size.max - self.size.min;
        let len = self.size.min + rng.gen_usize(span.max(1));
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for vectors whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
