//! Numeric `ANY` strategies.

pub mod f64 {
    use crate::strategy::{Rejection, Strategy};
    use crate::test_runner::TestRng;

    /// Strategy over every `f64` bit pattern, with special values
    /// (zeros, infinities, NaN, subnormals) sampled at an elevated rate so
    /// bit-exactness properties exercise them reliably.
    pub struct Any;

    pub const ANY: Any = Any;

    const SPECIALS: [u64; 8] = [
        0x0000_0000_0000_0000, // +0.0
        0x8000_0000_0000_0000, // -0.0
        0x7ff0_0000_0000_0000, // +inf
        0xfff0_0000_0000_0000, // -inf
        0x7ff8_0000_0000_0000, // quiet NaN
        0x0000_0000_0000_0001, // smallest subnormal
        0x3ff0_0000_0000_0000, // 1.0
        0x7fef_ffff_ffff_ffff, // MAX
    ];

    impl Strategy for Any {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> Result<f64, Rejection> {
            let roll = rng.next_u64();
            let bits = if roll.is_multiple_of(8) {
                SPECIALS[(roll >> 32) as usize % SPECIALS.len()]
            } else {
                rng.next_u64()
            };
            Ok(f64::from_bits(bits))
        }
    }
}
