//! Minimal, dependency-free stand-in for the `rand` crate, version 0.8.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the API surface the workspace uses: `Rng` (via
//! `gen`, `gen_range`, `gen_bool`), `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng`. The generator is xoshiro256** seeded through SplitMix64 —
//! deterministic for a given seed, which is all the workspace relies on
//! (circuit generators and sampling tests fix their seeds). The output
//! stream intentionally makes no attempt to match upstream `rand`.

pub mod distributions {
    use crate::RngCore;

    /// The "natural" distribution for a type (uniform bits; `[0, 1)` for
    /// floats), mirroring `rand::distributions::Standard`.
    pub struct Standard;

    /// Types that can be sampled from a distribution.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// 53 uniform mantissa bits in `[0, 1)`.
    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }
}

/// Core randomness source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % (span as u128);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let span = (end as i128) - (start as i128) + 1;
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128) % (span as u128);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = distributions::Distribution::sample(&distributions::Standard, rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u: $t = distributions::Distribution::sample(&distributions::Standard, rng);
                start + u * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support, mirroring `rand::SeedableRng` (only the `seed_from_u64`
/// entry point is used by this workspace).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
