//! Minimal, dependency-free stand-in for `serde`.
//!
//! No serialization format (JSON, bincode, ...) exists in this workspace's
//! dependency set — `serde` is used purely at the *trait-bound* level
//! (`#[derive(Serialize, Deserialize)]` plus generic bounds such as
//! `T: Serialize + for<'de> Deserialize<'de>`). This shim therefore provides
//! marker traits with blanket implementations and derive macros that expand
//! to nothing. The moment a real codec is introduced, this crate must be
//! replaced with the genuine article.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}

pub use serde_derive::{Deserialize, Serialize};
