//! Minimal, dependency-free stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning API
//! (`lock()` returns the guard directly). Performance characteristics of the
//! real crate are not reproduced — only the interface this workspace uses.

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
