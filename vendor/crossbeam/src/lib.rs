//! Minimal, dependency-free stand-in for `crossbeam`'s scoped threads
//! and MPMC channels.
//!
//! `crossbeam::scope` / `crossbeam::thread::scope` and
//! [`channel`] are provided — the API surface this
//! workspace uses. Scoped threads follow the same strategy as the real
//! crate: spawned closures are lifetime-erased to `'static` (sound
//! because `scope` joins every spawned thread before it returns, so no
//! borrow outlives the call), and a panic in any spawned thread surfaces
//! as the `Err` variant of the scope result.

pub mod channel;

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

pub mod thread {
    pub use crate::{scope, Scope, ScopedJoinHandle};
}

type Panic = Box<dyn Any + Send + 'static>;

type HandleSlot = Arc<Mutex<Option<JoinHandle<()>>>>;
type PanicSlot = Arc<Mutex<Option<Panic>>>;

#[derive(Default)]
struct ScopeData {
    /// Handle + panic-payload slot of every spawned thread. Slots are shared
    /// with the corresponding [`ScopedJoinHandle`] so an explicit `join` and
    /// the end-of-scope sweep cooperate on the same thread: whichever runs
    /// first joins it, and a panic payload still sitting in its slot at end
    /// of scope counts as unhandled.
    handles: Mutex<Vec<(HandleSlot, PanicSlot)>>,
}

/// Scope handle passed to the `scope` closure, mirroring
/// `crossbeam::thread::Scope<'env>`.
pub struct Scope<'env> {
    data: Arc<ScopeData>,
    /// Invariant over `'env`, like the real crate.
    _env: PhantomData<&'env mut &'env ()>,
}

/// Handle to a spawned thread, mirroring `crossbeam::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    slot: HandleSlot,
    panic: PanicSlot,
    result: Arc<Mutex<Option<T>>>,
    _scope: PhantomData<&'scope ()>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish and returns its result (`Err` holds
    /// the panic payload if the thread panicked).
    pub fn join(self) -> Result<T, Panic> {
        let handle = self.slot.lock().unwrap().take();
        if let Some(handle) = handle {
            // The worker wrapper never panics: the payload travels through
            // the panic slot instead.
            handle.join().expect("worker wrapper panicked");
        }
        // Taking the payload marks the panic as handled by this caller.
        let payload = self.panic.lock().unwrap().take();
        match payload {
            Some(payload) => Err(payload),
            None => Ok(self
                .result
                .lock()
                .unwrap()
                .take()
                .expect("thread result missing after join")),
        }
    }
}

impl<'env> Scope<'env> {
    /// Spawns a scoped thread. The closure receives this scope again so
    /// nested spawns work, exactly like the real API.
    pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'env>) -> T + Send + 'env,
        T: Send + 'env,
    {
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let panic: PanicSlot = Arc::new(Mutex::new(None));
        let result_in = Arc::clone(&result);
        let panic_in = Arc::clone(&panic);
        let data = Arc::clone(&self.data);

        let closure = move || {
            let scope = Scope::<'env> {
                data,
                _env: PhantomData,
            };
            match catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                Ok(value) => *result_in.lock().unwrap() = Some(value),
                Err(payload) => *panic_in.lock().unwrap() = Some(payload),
            }
        };
        // Erase `'env`: `scope` joins every thread before returning, so the
        // closure provably never outlives the borrows it captures.
        let closure: Box<dyn FnOnce() + Send + 'env> = Box::new(closure);
        let closure: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(closure) };

        let handle = std::thread::spawn(closure);
        let slot = Arc::new(Mutex::new(Some(handle)));
        self.data
            .handles
            .lock()
            .unwrap()
            .push((Arc::clone(&slot), Arc::clone(&panic)));
        ScopedJoinHandle {
            slot,
            panic,
            result,
            _scope: PhantomData,
        }
    }

    /// Joins all threads spawned so far (including ones spawned while
    /// joining). Returns `true` if any thread panicked.
    fn join_all(&self) -> bool {
        let mut any_panic = false;
        loop {
            let (slot, panic) = {
                let mut handles = self.data.handles.lock().unwrap();
                match handles.pop() {
                    Some(s) => s,
                    None => break,
                }
            };
            let handle = slot.lock().unwrap().take();
            if let Some(handle) = handle {
                // The worker wrapper itself never panics.
                handle.join().expect("worker wrapper panicked");
            }
            // A payload nobody claimed via `ScopedJoinHandle::join` means an
            // unhandled child panic.
            if panic.lock().unwrap().take().is_some() {
                any_panic = true;
            }
        }
        any_panic
    }
}

/// Creates a scope in which threads borrowing from the environment may be
/// spawned; all spawned threads are joined before `scope` returns.
///
/// Mirrors `crossbeam::scope`: the `Err` variant reports that the main
/// closure or any spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Panic>
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let scope = Scope {
        data: Arc::new(ScopeData::default()),
        _env: PhantomData,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    let child_panicked = scope.join_all();
    match outcome {
        Ok(value) if !child_panicked => Ok(value),
        Ok(_) => Err(Box::new("a scoped thread panicked")),
        // A panic in the main closure is this caller's own bug — propagate
        // it like the real crate does.
        Err(payload) => resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_environment() {
        let mut data = vec![0u64; 64];
        let mid = data.len() / 2;
        let (lo, hi) = data.split_at_mut(mid);
        super::scope(|s| {
            s.spawn(move |_| {
                for (i, v) in lo.iter_mut().enumerate() {
                    *v = i as u64;
                }
            });
            s.spawn(move |_| {
                for (i, v) in hi.iter_mut().enumerate() {
                    *v = (mid + i) as u64;
                }
            });
        })
        .expect("threads join");
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn join_returns_value() {
        let answer = super::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().expect("no panic")
        })
        .expect("scope ok");
        assert_eq!(answer, 42);
    }

    #[test]
    fn child_panic_is_reported_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_works() {
        let r = super::scope(|s| {
            s.spawn(|s2| {
                let h = s2.spawn(|_| 7);
                h.join().expect("inner ok")
            })
            .join()
            .expect("outer ok")
        })
        .expect("scope ok");
        assert_eq!(r, 7);
    }
}
