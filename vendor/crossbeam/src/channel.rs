//! Minimal stand-in for `crossbeam-channel`: MPMC channels on the
//! standard library's `Mutex` + `Condvar`.
//!
//! Mirrors exactly the API surface this workspace uses — `bounded`,
//! `unbounded`, cloneable `Sender`/`Receiver`, blocking `send`/`recv`,
//! `try_send`/`try_recv`, and `recv_timeout` — with the real crate's
//! disconnection semantics: a channel counts its live senders and
//! receivers, and an operation that can never complete (no peer left)
//! fails instead of blocking forever. Performance is not the point
//! (the real crate's lock-free queues are); correctness under
//! concurrent producers and consumers is.
//!
//! `bounded(0)` (the real crate's rendezvous channel) is not supported
//! by this queue-based implementation and panics loudly rather than
//! silently buffering.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`]: the channel is empty and every
/// sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when a message arrives or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when space frees up or the last receiver leaves.
    not_full: Condvar,
}

/// The sending half of a channel. Cloneable; the channel disconnects
/// for receivers once every clone is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable; the channel disconnects
/// for senders once every clone is dropped.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A channel holding at most `cap` in-flight messages; `send` blocks
/// while full. `cap` must be ≥ 1 (rendezvous channels are unsupported).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded(0) rendezvous channels are not supported");
    channel(Some(cap))
}

/// A channel with no capacity bound; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the message is queued or every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            let full = st.cap.is_some_and(|c| st.queue.len() >= c);
            if !full {
                st.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = self.shared.not_full.wait(st).unwrap();
        }
    }

    /// Queues the message only if there is room right now.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.state.lock().unwrap();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if st.cap.is_some_and(|c| st.queue.len() >= c) {
            return Err(TrySendError::Full(value));
        }
        st.queue.push_back(value);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.not_empty.wait(st).unwrap();
        }
    }

    /// Takes a message only if one is queued right now.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().unwrap();
        match st.queue.pop_front() {
            Some(v) => {
                self.shared.not_full.notify_one();
                Ok(v)
            }
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap();
            st = guard;
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            // Wake blocked receivers so they observe the disconnect.
            drop(st);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        let producer = thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv().unwrap(), 1);
        producer.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn drop_of_all_senders_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn drop_of_all_receivers_fails_send() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
    }

    #[test]
    fn mpmc_under_contention_delivers_every_message() {
        let (tx, rx) = bounded(4);
        let n_producers = 4;
        let per = 100;
        let mut handles = Vec::new();
        for p in 0..n_producers {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    tx.send(p * per + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n_producers * per).collect::<Vec<_>>());
    }
}
