//! No-op derive macros for the vendored `serde` stand-in.
//!
//! The vendored `serde` provides blanket implementations of its marker
//! traits, so the derives have nothing to generate; they exist only so
//! `#[derive(Serialize, Deserialize)]` (and any `#[serde(...)]` helper
//! attributes) keep compiling.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
