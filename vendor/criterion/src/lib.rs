//! Minimal, dependency-free stand-in for `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, throughput,
//! `BenchmarkId`, `Bencher::iter`) on top of a simple median-of-samples
//! timer. Behavior by invocation:
//!
//! - `cargo bench` (cargo passes `--bench`): warm up, take
//!   `sample_size` samples, report median time and throughput;
//! - `cargo test` (no `--bench` flag): run every routine once so benches
//!   stay smoke-tested without burning CI time.
//!
//! A positional CLI argument filters benchmarks by substring, like the real
//! crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Debug)]
struct Settings {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            sample_size: 100,
        }
    }
}

/// Top-level harness configuration, mirroring `criterion::Criterion`.
pub struct Criterion {
    settings: Settings,
    /// Full measurement (`cargo bench`) vs single-shot smoke run (`cargo test`).
    measure: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut measure = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => measure = true,
                "--test" => measure = false,
                s if !s.starts_with('-') && filter.is_none() => filter = Some(s.to_string()),
                _ => {}
            }
        }
        Criterion {
            settings: Settings::default(),
            measure,
            filter,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.settings.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings_override: None,
            throughput: None,
        }
    }
}

/// Throughput annotation for reporting, mirroring `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Accepted first argument of `bench_function`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    settings_override: Option<Settings>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    fn settings(&self) -> Settings {
        self.settings_override
            .clone()
            .unwrap_or_else(|| self.criterion.settings.clone())
    }

    fn settings_mut(&mut self) -> &mut Settings {
        if self.settings_override.is_none() {
            self.settings_override = Some(self.criterion.settings.clone());
        }
        self.settings_override.as_mut().expect("just initialized")
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings_mut().sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings_mut().warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings_mut().measurement = d;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.run_one(&full, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.run_one(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run_one(&self, full_name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.criterion.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let settings = self.settings();
        let mut bencher = Bencher {
            mode: if self.criterion.measure {
                Mode::Measure(settings)
            } else {
                Mode::Smoke
            },
            median: None,
        };
        f(&mut bencher);
        match bencher.median {
            Some(median) => {
                let thrpt = match self.throughput {
                    Some(Throughput::Bytes(bytes)) if median > 0.0 => {
                        let gib = bytes as f64 / median / (1u64 << 30) as f64;
                        format!("  thrpt: [{gib:.3} GiB/s]")
                    }
                    Some(Throughput::Elements(n)) if median > 0.0 => {
                        let meps = n as f64 / median / 1e6;
                        format!("  thrpt: [{meps:.3} Melem/s]")
                    }
                    _ => String::new(),
                };
                println!("{full_name:<40} time: [{}]{thrpt}", format_time(median));
            }
            None => println!("{full_name:<40} ok (smoke run)"),
        }
    }

    pub fn finish(self) {}
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

enum Mode {
    /// Run the routine once (used under `cargo test`).
    Smoke,
    /// Warm up, then time `sample_size` samples.
    Measure(Settings),
}

pub struct Bencher {
    mode: Mode,
    median: Option<f64>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &self.mode {
            Mode::Smoke => {
                black_box(routine());
            }
            Mode::Measure(settings) => {
                // Warm-up, and estimate the per-iteration cost.
                let warm_start = Instant::now();
                let mut warm_iters = 0u64;
                while warm_start.elapsed() < settings.warm_up || warm_iters == 0 {
                    black_box(routine());
                    warm_iters += 1;
                }
                let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

                // Size samples so the whole measurement fits the time budget.
                let budget = settings.measurement.as_secs_f64() / settings.sample_size as f64;
                let iters_per_sample = (budget / per_iter.max(1e-9)).ceil().max(1.0) as u64;

                let mut samples = Vec::with_capacity(settings.sample_size);
                for _ in 0..settings.sample_size {
                    let start = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(routine());
                    }
                    samples.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
                }
                samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
                self.median = Some(samples[samples.len() / 2]);
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut criterion = Criterion {
            settings: Settings::default(),
            measure: false,
            filter: None,
        };
        let mut count = 0u32;
        let mut group = criterion.benchmark_group("g");
        group.bench_function("once", |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 1);
    }

    #[test]
    fn measure_mode_reports_median() {
        let mut criterion = Criterion {
            settings: Settings {
                warm_up: Duration::from_millis(5),
                measurement: Duration::from_millis(20),
                sample_size: 5,
            },
            measure: true,
            filter: None,
        };
        let mut group = criterion.benchmark_group("g");
        group.throughput(Throughput::Bytes(1 << 20));
        group.bench_function("busy", |b| b.iter(|| black_box((0..1000u64).sum::<u64>())));
        group.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut criterion = Criterion {
            settings: Settings::default(),
            measure: false,
            filter: Some("nomatch".to_string()),
        };
        let mut ran = false;
        let mut group = criterion.benchmark_group("g");
        group.bench_function("skipped", |b| b.iter(|| ran = true));
        group.finish();
        assert!(!ran);
    }
}
