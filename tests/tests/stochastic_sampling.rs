//! The stochastic layer's two contracts, end to end:
//!
//! 1. **Statistics** — seeded end-of-circuit sampling draws from the
//!    *correct* distribution: a chi-square test holds the engine's shot
//!    counts against the dense reference simulator's exact
//!    probabilities (buckets with small expectation pooled, bound
//!    `df + 4·√(2·df)` ≈ mean + 4 standard deviations).
//! 2. **Determinism** — with a fixed `stoch_seed`, every stochastic
//!    artifact (noise rewrite, mid-circuit collapse outcomes, sampled
//!    counts, and the final state) is bit-identical across execution
//!    versions, worker thread counts, device counts, and chunk sizes.
//!    Randomness is keyed by *site*, never by execution order.

use qgpu::{NoiseConfig, SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::Circuit;
use qgpu_device::Platform;
use qgpu_sched::reorder::ReorderStrategy;
use qgpu_statevec::{reference, StateVector};

const SEED: u64 = 0xDEC0DE;

fn assert_bitwise_eq(a: &StateVector, b: &StateVector, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: dimension mismatch");
    for i in 0..a.len() {
        let (x, y) = (a.amp(i), b.amp(i));
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{ctx}: amplitude {i} differs ({x:?} vs {y:?})"
        );
    }
}

/// Chi-square statistic of observed counts against exact probabilities,
/// pooling every state whose expectation falls below 5 shots into one
/// tail bucket (the classical validity rule). Returns `(chi2, df)`.
fn chi_square(counts: &[(usize, u64)], probs: &[f64], shots: u64) -> (f64, usize) {
    let mut observed = vec![0u64; probs.len()];
    for &(state, count) in counts {
        observed[state] = count;
    }
    let (mut chi2, mut buckets) = (0.0f64, 0usize);
    let (mut tail_obs, mut tail_exp) = (0.0f64, 0.0f64);
    for (i, &p) in probs.iter().enumerate() {
        let exp = p * shots as f64;
        if exp >= 5.0 {
            let d = observed[i] as f64 - exp;
            chi2 += d * d / exp;
            buckets += 1;
        } else {
            tail_obs += observed[i] as f64;
            tail_exp += exp;
        }
    }
    if tail_exp >= 5.0 {
        let d = tail_obs - tail_exp;
        chi2 += d * d / tail_exp;
        buckets += 1;
    } else {
        // A negligible tail: any observed shot there is already a
        // distribution error — fold it in against its tiny expectation.
        assert!(
            tail_obs <= tail_exp * 20.0 + 1.0,
            "tail overweight: observed {tail_obs} vs expected {tail_exp}"
        );
    }
    (chi2, buckets.saturating_sub(1))
}

#[test]
fn sampled_counts_pass_chi_square_against_exact_probabilities() {
    for (b, n, shots) in [
        (Benchmark::Qft, 8, 1u64 << 14),
        (Benchmark::Iqp, 10, 1 << 15),
        (Benchmark::Bv, 12, 1 << 12),
    ] {
        let circuit = b.generate(n);
        let probs = reference::run_dense(&circuit).probabilities();
        let cfg = SimConfig::scaled_paper(n)
            .with_version(Version::QGpu)
            .with_shots(shots)
            .with_stoch_seed(SEED);
        let r = Simulator::new(cfg).run(&circuit);
        let samples = r.samples.expect("shots requested");
        assert_eq!(samples.iter().map(|&(_, c)| c).sum::<u64>(), shots);
        assert_eq!(r.report.shots, shots);

        let (chi2, df) = chi_square(&samples, &probs, shots);
        let bound = df as f64 + 4.0 * (2.0 * df as f64).sqrt();
        assert!(
            chi2 <= bound + 1e-9,
            "{b}_{n}: chi2 {chi2:.1} exceeds bound {bound:.1} (df {df})"
        );
    }
}

/// A circuit exercising every stochastic feature: entangling layers
/// around mid-circuit measurements and a reset, under per-gate noise.
fn stochastic_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure(0).reset(n - 1);
    for q in 0..n {
        c.rz(0.3 + q as f64 * 0.1, q);
    }
    c.measure(n / 2);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

fn noise() -> NoiseConfig {
    NoiseConfig {
        depolarizing: 0.05,
        loss: 0.02,
        ..NoiseConfig::default()
    }
}

fn run(cfg: SimConfig, c: &Circuit) -> (StateVector, Vec<(usize, u64)>, u64) {
    let r = Simulator::new(cfg).run(c);
    (
        r.state.expect("collected"),
        r.samples.expect("shots requested"),
        r.report.collapses,
    )
}

#[test]
fn noisy_collapse_and_sampling_bit_identical_across_versions_threads_devices() {
    let n = 10;
    let c = stochastic_circuit(n);
    // Reordering pinned to Original so every version executes the same
    // gate order (a reorder legitimately changes rounding); the reorder
    // case gets its own test below.
    let cfg_for = |devices: usize, threads: usize, v: Version| {
        SimConfig::new(Platform::scaled_paper_p100(n).with_devices(devices))
            .with_version(v)
            .with_reorder_strategy(ReorderStrategy::Original)
            .with_threads(threads)
            .with_noise(noise())
            .with_stoch_seed(SEED)
            .with_shots(512)
    };
    let (golden_state, golden_samples, golden_collapses) =
        run(cfg_for(1, 1, Version::Baseline), &c);
    assert!(
        golden_collapses >= 3,
        "circuit must actually collapse: {golden_collapses}"
    );
    for v in Version::ALL {
        for threads in [1usize, 4] {
            for devices in [1usize, 4] {
                let ctx = format!("{v}, threads {threads}, devices {devices}");
                let (state, samples, collapses) = run(cfg_for(devices, threads, v), &c);
                assert_bitwise_eq(&golden_state, &state, &ctx);
                assert_eq!(golden_samples, samples, "{ctx}: samples diverged");
                assert_eq!(golden_collapses, collapses, "{ctx}: collapse count");
            }
        }
    }
}

#[test]
fn reordered_stochastic_runs_are_bitwise_stable_across_threads() {
    // Under the default forward-looking reorder the executed order (and
    // so the rounding) differs from source order, but within one version
    // the result must stay bitwise independent of thread count — the
    // collapse draws are keyed by (qubit, occurrence), which any valid
    // topological order preserves.
    let n = 10;
    let c = stochastic_circuit(n);
    for v in [Version::Reorder, Version::QGpu] {
        let base = SimConfig::scaled_paper(n)
            .with_version(v)
            .with_noise(noise())
            .with_stoch_seed(SEED)
            .with_shots(256);
        let (s1, c1, k1) = run(base.clone(), &c);
        let (s4, c4, k4) = run(base.clone().with_threads(4), &c);
        assert_bitwise_eq(&s1, &s4, &format!("{v} threads"));
        assert_eq!(c1, c4, "{v}: samples diverged across threads");
        assert_eq!(k1, k4, "{v}: collapse count across threads");
    }
}

#[test]
fn collapse_is_invariant_to_chunk_partitioning() {
    // The probability reduction and renormalization are sequential
    // global-index-order passes, so the chunk size must be bitwise
    // invisible to every collapse outcome and every sampled count.
    let n = 10;
    let c = stochastic_circuit(n);
    let base = SimConfig::scaled_paper(n)
        .with_version(Version::QGpu)
        .with_reorder_strategy(ReorderStrategy::Original)
        .with_noise(noise())
        .with_stoch_seed(SEED)
        .with_shots(256);
    let (golden_state, golden_samples, golden_collapses) = run(base.clone(), &c);
    for chunk_count_log2 in [1u32, 3, 7] {
        let ctx = format!("chunk_count_log2 {chunk_count_log2}");
        let (state, samples, collapses) =
            run(base.clone().with_chunk_count_log2(chunk_count_log2), &c);
        assert_bitwise_eq(&golden_state, &state, &ctx);
        assert_eq!(golden_samples, samples, "{ctx}: samples");
        assert_eq!(golden_collapses, collapses, "{ctx}: collapses");
    }
}

#[test]
fn measurement_statistics_match_the_born_rule() {
    // One qubit of a Bell pair measured mid-circuit: across many seeds
    // the outcome frequency must track p = 1/2, and within one run the
    // post-measurement state must be a definite computational pair.
    let mut ones = 0u32;
    let trials = 200;
    for seed in 0..trials {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure(0);
        let cfg = SimConfig::scaled_paper(2)
            .with_version(Version::Baseline)
            .with_stoch_seed(seed);
        let state = Simulator::new(cfg).run(&c).state.expect("collected");
        let p = state.probabilities();
        // Collapsed: exactly one of |00>, |11> survives.
        let p11 = p[3];
        assert!(
            (p[0] - 1.0).abs() < 1e-12 && p11 < 1e-24 || (p11 - 1.0).abs() < 1e-12 && p[0] < 1e-24,
            "seed {seed}: not collapsed: {p:?}"
        );
        if p11 > 0.5 {
            ones += 1;
        }
    }
    // 4σ band around the binomial mean (σ = √(n/4) ≈ 7.07).
    let dev = (f64::from(ones) - 100.0).abs();
    assert!(dev < 4.0 * 7.08, "Born-rule drift: {ones} of {trials} ones");
}

#[test]
fn reset_forces_the_qubit_to_zero() {
    let mut c = Circuit::new(3);
    c.h(0).h(1).h(2).cx(0, 2).reset(2);
    for seed in [0u64, 1, 2, 3] {
        let cfg = SimConfig::scaled_paper(3)
            .with_version(Version::QGpu)
            .with_stoch_seed(seed);
        let state = Simulator::new(cfg).run(&c).state.expect("collected");
        let p = state.probabilities();
        let p_q2_one: f64 = (0..8).filter(|i| i & 0b100 != 0).map(|i| p[i]).sum();
        assert!(p_q2_one < 1e-24, "seed {seed}: reset qubit not |0>: {p:?}");
    }
}
