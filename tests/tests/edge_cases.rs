//! Edge cases across the stack: extreme chunk configurations, minimal
//! circuits, and platform corner cases.

use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::{Circuit, Gate, Operation};
use qgpu_device::Platform;
use qgpu_statevec::{ChunkedState, StateVector};

#[test]
fn single_chunk_state_runs_every_version() {
    // chunk_count_log2 = 0 → the whole state is one chunk; Case 2 can
    // never occur and every gate is chunk-local.
    let c = Benchmark::Gs.generate(8);
    let mut reference = StateVector::new_zero(8);
    reference.run(&c);
    for v in Version::ALL {
        let cfg = SimConfig::scaled_paper(8)
            .with_version(v)
            .with_chunk_count_log2(0);
        let r = Simulator::new(cfg).run(&c);
        let dev = r.state.expect("collected").max_deviation(&reference);
        assert!(dev < 1e-10, "{v}: {dev}");
    }
}

#[test]
fn two_amplitude_chunks_run_every_version() {
    // Minimal chunks: every multi-qubit gate crosses the boundary.
    let c = Benchmark::Qft.generate(7);
    let mut reference = StateVector::new_zero(7);
    reference.run(&c);
    for v in Version::ALL {
        let cfg = SimConfig::scaled_paper(7)
            .with_version(v)
            .with_chunk_count_log2(6); // chunk_bits = 1
        let r = Simulator::new(cfg).run(&c);
        let dev = r.state.expect("collected").max_deviation(&reference);
        assert!(dev < 1e-10, "{v}: {dev}");
    }
}

#[test]
fn one_gate_circuit() {
    let mut c = Circuit::new(6);
    c.h(5);
    for v in Version::ALL {
        let r = Simulator::new(SimConfig::scaled_paper(6).with_version(v)).run(&c);
        let s = r.state.expect("collected");
        assert!((s.amp(0).norm_sqr() - 0.5).abs() < 1e-12, "{v}");
        assert!((s.amp(32).norm_sqr() - 0.5).abs() < 1e-12, "{v}");
    }
}

#[test]
fn diagonal_only_circuit_never_transfers_under_pruning() {
    // All-diagonal gates on the zero state do nothing; with pruning every
    // chunk but chunk 0 is skipped, and chunk 0 holds |0…0⟩.
    let mut c = Circuit::new(8);
    c.t(0).cz(1, 2).rz(0.5, 7).cp(0.3, 3, 6).rzz(0.7, 4, 5);
    let r = Simulator::new(SimConfig::scaled_paper(8).with_version(Version::Pruning)).run(&c);
    let s = r.state.expect("collected");
    // rz/rzz phase the |0…0⟩ amplitude (e^{-iθ/2}) but it keeps unit
    // magnitude, and every other amplitude stays exactly zero.
    assert!((s.amp(0).norm_sqr() - 1.0).abs() < 1e-12);
    assert_eq!(s.zero_count(), s.len() - 1);
    // Only the live chunk moves, once per gate, and dynamic sizing keeps
    // it far below the 4 KB full state.
    assert!(
        r.report.bytes_h2d < 2 << 10,
        "bytes = {}",
        r.report.bytes_h2d
    );
}

#[test]
fn gpu_larger_than_state_behaves_like_pure_gpu_baseline() {
    let c = Benchmark::Bv.generate(9);
    let platform = Platform::paper_p100(); // 16 GB for an 8 KB state
    let r = Simulator::new(SimConfig::new(platform).with_version(Version::Baseline)).run(&c);
    assert_eq!(r.report.host_time, 0.0);
    assert_eq!(r.report.bytes_h2d, 0);
}

#[test]
fn chunked_state_handles_full_width_gates() {
    // A gate whose mixing qubit is the very top bit with maximal chunks.
    let mut s = ChunkedState::new_zero(6, 1);
    s.apply_operation(&Operation::new(Gate::H, vec![5]));
    s.apply_operation(&Operation::new(Gate::Cx, vec![5, 0]));
    let flat = s.to_flat();
    let mut reference = StateVector::new_zero(6);
    reference.apply(&Operation::new(Gate::H, vec![5]));
    reference.apply(&Operation::new(Gate::Cx, vec![5, 0]));
    assert!(flat.max_deviation(&reference) < 1e-12);
}

#[test]
fn sixty_four_qubit_circuit_analysis_only() {
    // Analysis (not simulation) must work at the involvement mask's edge.
    let mut c = Circuit::new(64);
    for q in 0..64 {
        c.h(q);
    }
    c.cx(0, 63);
    let summary = qgpu_circuit::involvement::summarize(&c);
    assert_eq!(summary.ops_before_full, 64);
    let order = qgpu_sched::reorder::forward_looking_order(&c);
    assert_eq!(order.len(), c.len());
}

#[test]
fn empty_benchmark_sizes_rejected() {
    // The smallest supported benchmark sizes still generate.
    for b in Benchmark::ALL {
        let min = if matches!(b, Benchmark::Qf) { 4 } else { 2 };
        let c = b.generate(min);
        assert!(!c.is_empty(), "{b}");
    }
}

#[test]
fn batching_with_single_chunk_collapses_all_transfers() {
    let c = Benchmark::Hchain.generate(8);
    let cfg = SimConfig::scaled_paper(8)
        .with_version(Version::Overlap)
        .with_chunk_count_log2(0)
        .with_gate_batching();
    let r = Simulator::new(cfg).run(&c);
    // Everything is local to the single chunk: one round trip per
    // MAX_BATCH gates rather than per gate.
    let state_bytes = (1u64 << 8) * 16;
    assert!(
        r.report.bytes_h2d <= state_bytes * (c.len() as u64 / 32),
        "bytes_h2d = {}",
        r.report.bytes_h2d
    );
    let mut reference = StateVector::new_zero(8);
    reference.run(&c);
    assert!(r.state.expect("collected").max_deviation(&reference) < 1e-10);
}

#[test]
fn inverse_circuits_return_to_zero_state() {
    use qgpu_circuit::generators::{quantum_fourier_transform, quantum_fourier_transform_inverse};
    let n = 7;
    let mut c = quantum_fourier_transform(n);
    c.extend_from(&quantum_fourier_transform_inverse(n));
    let mut s = StateVector::new_zero(n);
    s.run(&c);
    assert!((s.amp(0).norm_sqr() - 1.0).abs() < 1e-10);
    assert!(s.probabilities()[1..].iter().all(|&p| p < 1e-10));

    // Same for an arbitrary benchmark and its inverse.
    let b = Benchmark::Hlf.generate(7);
    let mut round_trip = b.clone();
    round_trip.extend_from(&b.inverse());
    let mut s = StateVector::new_zero(7);
    s.run(&round_trip);
    assert!((s.amp(0).norm_sqr() - 1.0).abs() < 1e-9);
}
