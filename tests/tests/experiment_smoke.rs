//! Smoke tests: every experiment driver runs end to end at small sizes
//! and produces well-formed tables — `repro all` in miniature.

use qgpu::experiments;
use qgpu_circuit::generators::Benchmark;

#[test]
fn every_experiment_produces_rows() {
    let tables = vec![
        experiments::fig2::run(9),
        experiments::fig3_4::run(9).0,
        experiments::fig3_4::run(9).1,
        experiments::fig6::run(Benchmark::Gs, 9),
        experiments::fig7::run(9, &[0, 20, 40]),
        experiments::fig8::run(),
        experiments::fig9::run(10),
        experiments::fig10::run(10),
        experiments::fig12::run(9),
        experiments::fig13::run(9),
        experiments::fig14::run(9),
        experiments::fig15::run(9),
        experiments::fig16::run(9).0,
        experiments::fig16::run(9).1,
        experiments::fig17::run(9),
        experiments::fig19::run(9),
        experiments::tab2::run(20),
        experiments::tab3::run(9),
    ];
    for t in &tables {
        assert!(!t.rows.is_empty(), "{}: no rows", t.title);
        for row in &t.rows {
            assert_eq!(row.len(), t.headers.len(), "{}: ragged row", t.title);
        }
        // Rendering must not panic and must contain the title.
        let rendered = t.to_string();
        assert!(rendered.contains(&t.title));
    }
}

#[test]
fn headline_numbers_have_paper_shape() {
    // One consolidated check of the reproduction's headline claims at a
    // small-but-meaningful size.
    let rows = experiments::fig12::measure(11);
    let geo = |i: usize| qgpu_math::stats::geometric_mean(rows.iter().map(|r| r.versions[i]));
    // Paper (34 qubits): Overlap 0.76, Pruning 0.52, Reorder 0.41, Q-GPU 0.28.
    let overlap = geo(2);
    let pruning = geo(3);
    let reorder = geo(4);
    let qgpu = geo(5);
    assert!((0.5..1.0).contains(&overlap), "overlap {overlap}");
    assert!(pruning < overlap, "pruning {pruning}");
    assert!(reorder <= pruning, "reorder {reorder}");
    assert!(qgpu <= reorder, "qgpu {qgpu}");
    assert!(
        qgpu < 0.45,
        "full recipe should at least halve the time: {qgpu}"
    );
}
