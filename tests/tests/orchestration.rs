//! Multi-device orchestration integration: device loss, straggler
//! mitigation and the memory-pressure governor must all be *silent* in
//! the functional result — the paper's "optimizations do not affect the
//! simulation results" invariant extends to fleet disruption. A run
//! that loses a device re-shards onto survivors and replays from the
//! last checkpoint barrier; a straggler sheds work; a residency budget
//! degrades throughput — and every one of them reproduces the
//! fault-free state bit for bit, at every fleet size and thread count.

use proptest::prelude::*;
use qgpu::{FaultConfig, SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_device::Platform;
use qgpu_statevec::StateVector;

/// A miniaturized `devices`-device fleet at the paper's residency ratio.
fn fleet_cfg(n: usize, devices: usize, v: Version) -> SimConfig {
    let p = Platform::scaled_paper_p100(n).with_devices(devices);
    SimConfig::new(p).with_version(v)
}

/// Asserts two states are equal down to the last bit of every amplitude.
fn assert_bitwise_eq(a: &StateVector, b: &StateVector, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: dimension mismatch");
    for i in 0..a.len() {
        let (x, y) = (a.amp(i), b.amp(i));
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{ctx}: amplitude {i} differs ({x:?} vs {y:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Losing any device at any program op leaves the state bit-identical
    /// to the fault-free run — across fleet sizes and thread counts. The
    /// reference is always the single-threaded fault-free run, so thread
    /// invariance is covered by the same comparison.
    #[test]
    fn device_loss_at_any_epoch_is_bit_exact(
        devices in 2usize..=4,
        threads in prop_oneof![Just(1usize), Just(4usize)],
        lost_op in 0usize..50,
        lost_pick in 0usize..4,
        seed in 0u64..1024,
    ) {
        let n = 10;
        let c = Benchmark::Qft.generate(n);
        let lost_dev = lost_pick % devices;
        let clean =
            Simulator::new(fleet_cfg(n, devices, Version::QGpu).with_threads(1)).run(&c);
        let faults = FaultConfig {
            seed,
            device_lost_at: lost_op,
            device_lost_id: lost_dev,
            ..FaultConfig::default()
        };
        let lossy = Simulator::new(
            fleet_cfg(n, devices, Version::QGpu)
                .with_threads(threads)
                .with_faults(faults),
        )
        .try_run(&c)
        .expect("survivors absorb a single device loss");
        assert_bitwise_eq(
            clean.state.as_ref().expect("collected"),
            lossy.state.as_ref().expect("collected"),
            &format!("{devices} devices, {threads} threads, lose {lost_dev}@{lost_op}"),
        );
        prop_assert_eq!(lossy.report.devices_lost, 1);
        prop_assert!(
            lossy.report.total_time >= clean.report.total_time,
            "recovery must not be modeled as free"
        );
    }
}

/// One device loss plus one pinned straggler in the same 4-device run:
/// the state stays bit-identical to the undisturbed run while the report
/// shows the loss, the migration, and the steals.
#[test]
fn loss_and_straggler_together_recover_bit_exactly() {
    let n = 12;
    let c = Benchmark::Qft.generate(n);
    let clean = Simulator::new(fleet_cfg(n, 4, Version::Overlap)).run(&c);
    let faults = FaultConfig {
        seed: 7,
        device_lost_at: 20,
        device_lost_id: 3,
        straggler_device: 1,
        slowdown_factor: 8.0,
        ..FaultConfig::default()
    };
    let disrupted = Simulator::new(fleet_cfg(n, 4, Version::Overlap).with_faults(faults))
        .try_run(&c)
        .expect("loss + straggler must be absorbed");
    assert_bitwise_eq(
        clean.state.as_ref().expect("collected"),
        disrupted.state.as_ref().expect("collected"),
        "loss + straggler",
    );
    assert_eq!(disrupted.report.devices_lost, 1);
    assert!(
        disrupted.report.chunks_migrated > 0,
        "mid-run loss must migrate the dead device's replay work"
    );
    assert!(
        disrupted.report.steals > 0,
        "an 8x straggler must shed work to its peers"
    );
    // The undisturbed control run reacted to nothing.
    assert_eq!(clean.report.devices_lost, 0);
    assert_eq!(clean.report.chunks_migrated, 0);
    assert_eq!(clean.report.steals, 0);
}

/// The memory-pressure governor holds every version under a per-device
/// residency budget — degrading (shrink, compress, spill) instead of
/// failing — without touching the functional result.
#[test]
fn governor_never_exceeds_budget_across_versions() {
    // Debug builds take ~1 min per qft_20 run; keep tier-1 fast there
    // and exercise the paper-sized circuit in release CI.
    let n = if cfg!(debug_assertions) { 12 } else { 20 };
    let c = Benchmark::Qft.generate(n);
    for v in Version::ALL {
        let chunk_bytes = 16u64 << fleet_cfg(n, 2, v).chunk_bits_for(n);
        // Four base chunks per device: tight enough to bind on fleets
        // whose windows would otherwise hold more.
        let budget = 4 * chunk_bytes;
        let clean = Simulator::new(fleet_cfg(n, 2, v)).run(&c);
        let tight = Simulator::new(fleet_cfg(n, 2, v).with_mem_budget(budget))
            .try_run(&c)
            .unwrap_or_else(|e| panic!("{v}: pressure must degrade, not fail: {e}"));
        assert_bitwise_eq(
            clean.state.as_ref().expect("collected"),
            tight.state.as_ref().expect("collected"),
            &format!("{v} under budget"),
        );
        assert!(
            tight.report.peak_resident_bytes <= budget,
            "{v}: peak residency {} exceeded budget {budget}",
            tight.report.peak_resident_bytes
        );
        assert!(
            tight.report.peak_resident_bytes > 0,
            "{v}: budget run must track residency"
        );
    }
}
