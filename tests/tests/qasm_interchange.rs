//! OpenQASM interchange across the whole stack: emit → parse → simulate
//! must agree with direct simulation, for every benchmark family — the
//! flow the paper uses to feed its circuits to Qsim-Cirq and QDK (§V-C).

use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::qasm;
use qgpu_statevec::StateVector;

#[test]
fn roundtrip_preserves_simulation_semantics() {
    let n = 9;
    for b in Benchmark::ALL {
        let original = b.generate(n);
        let parsed = qasm::parse(&qasm::to_qasm(&original)).unwrap_or_else(|e| panic!("{b}: {e}"));

        let mut s1 = StateVector::new_zero(n);
        s1.run(&original);
        let mut s2 = StateVector::new_zero(n);
        s2.run(&parsed);

        let dev = s1.max_deviation(&s2);
        assert!(dev < 1e-12, "{b}: roundtrip deviation {dev}");
    }
}

#[test]
fn double_roundtrip_is_stable() {
    let original = Benchmark::Qf.generate(8);
    let once = qasm::to_qasm(&original);
    let twice = qasm::to_qasm(&qasm::parse(&once).expect("first parse"));
    assert_eq!(once, twice, "emission must be a fixed point");
}

#[test]
fn qasm_headers_are_standard() {
    let text = qasm::to_qasm(&Benchmark::Bv.generate(5));
    assert!(text.starts_with("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"));
    assert!(text.contains("qreg q[5];"));
}

#[test]
fn parses_external_style_program() {
    // A program in the style another toolchain would emit: mixed
    // whitespace, comments, u-gates, measurement boilerplate.
    let src = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
u2(0,pi) q[0];   // Hadamard as u2
cx q[0], q[1];
u1(pi/4) q[2];
barrier q[0], q[1], q[2];
measure q[0] -> c[0];
"#;
    let c = qasm::parse(src).expect("parse external program");
    // u2, cx, u1, and the measurement — barriers and comments dropped.
    assert_eq!(c.len(), 4);
    assert_eq!(c.num_qubits(), 3);
    let last = c.ops().last().expect("non-empty");
    assert_eq!(
        (last.gate(), last.qubits()),
        (qgpu_circuit::Gate::Measure, &[0][..]),
        "measurement boilerplate must parse as a real op"
    );
}
