//! Golden-report harness: pins the engine's observable behavior —
//! final state vectors, modeled `Timeline`s, and `ExecutionReport`s —
//! against fixtures captured from the pre-refactor engine, so any
//! engine restructuring can prove itself bit-exact.
//!
//! Each scenario runs a benchmark through one engine configuration and
//! reduces the result to four 64-bit FNV-1a fingerprints:
//!
//! - `state`   — the bit patterns of every final amplitude,
//! - `report`  — the deterministic JSON text of the `ExecutionReport`,
//! - `trace`   — every timeline event (engine, kind, span bits, bytes),
//! - `samples` — the seeded shot counts (the FNV offset when no shots
//!   were requested).
//!
//! The fingerprints live in `tests/fixtures/golden/engine_fingerprints.txt`.
//! A mismatch means the engine's modeled behavior changed; that is only
//! acceptable with a deliberate fixture regeneration:
//!
//! ```text
//! QGPU_GOLDEN_REGEN=1 cargo test -q -p qgpu-integration --test golden_reports
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use qgpu::{FaultConfig, NoiseConfig, SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::Circuit;
use qgpu_device::timeline::TraceEvent;
use qgpu_device::Platform;

/// 64-bit FNV-1a — tiny, dependency-free, and stable across runs.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

fn state_fingerprint(state: &qgpu_statevec::StateVector) -> u64 {
    let mut h = Fnv::new();
    for i in 0..state.len() {
        let a = state.amp(i);
        h.write_u64(a.re.to_bits());
        h.write_u64(a.im.to_bits());
    }
    h.finish()
}

fn report_fingerprint(report: &qgpu_device::ExecutionReport) -> u64 {
    let mut h = Fnv::new();
    h.write(report.to_json_string().as_bytes());
    h.finish()
}

fn trace_fingerprint(trace: &[TraceEvent]) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(trace.len() as u64);
    for ev in trace {
        h.write(format!("{:?}|{:?}", ev.engine, ev.kind).as_bytes());
        h.write_u64(ev.span.start.to_bits());
        h.write_u64(ev.span.end.to_bits());
        h.write_u64(ev.bytes);
    }
    h.finish()
}

fn samples_fingerprint(samples: Option<&[(usize, u64)]>) -> u64 {
    let mut h = Fnv::new();
    for &(state, count) in samples.unwrap_or(&[]) {
        h.write_u64(state as u64);
        h.write_u64(count);
    }
    h.finish()
}

/// One pinned engine configuration: a label plus the config it runs and
/// an optional circuit edit (e.g. appending mid-circuit measurements).
struct Scenario {
    label: String,
    benchmark: Benchmark,
    qubits: usize,
    config: SimConfig,
    prep: Option<fn(&mut Circuit)>,
}

/// Every scenario the fixture pins. The core grid is all nine paper
/// benchmarks × all six versions; extended rows exercise the batching,
/// fusion, chunk-sizing, multi-device, fault-injection, and
/// orchestration paths whose timelines must also survive a refactor.
fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    let n = 10;
    for b in Benchmark::ALL {
        for v in Version::ALL {
            out.push(Scenario {
                label: format!("{}/{}", b.abbrev(), v.label()),
                benchmark: b,
                qubits: n,
                prep: None,
                config: SimConfig::scaled_paper(n).with_version(v),
            });
        }
    }
    // Gate batching (qgpu + baseline take different batch paths).
    for v in [Version::Baseline, Version::QGpu] {
        out.push(Scenario {
            label: format!("qft/{}+batching", v.label()),
            benchmark: Benchmark::Qft,
            qubits: n,
            prep: None,
            config: SimConfig::scaled_paper(n)
                .with_version(v)
                .with_gate_batching(),
        });
    }
    // Gate fusion.
    out.push(Scenario {
        label: "qft/qgpu+fusion".into(),
        benchmark: Benchmark::Qft,
        qubits: n,
        prep: None,
        config: SimConfig::scaled_paper(n)
            .with_version(Version::QGpu)
            .with_gate_fusion(),
    });
    // Fixed chunk size (the dynamic-sizing ablation path).
    out.push(Scenario {
        label: "qft/qgpu+fixed-chunks".into(),
        benchmark: Benchmark::Qft,
        qubits: n,
        prep: None,
        config: SimConfig::scaled_paper(n)
            .with_version(Version::QGpu)
            .fixed_chunk_size(),
    });
    // Multi-device fleets (dealer + per-device windows).
    for v in [Version::Baseline, Version::Overlap, Version::QGpu] {
        out.push(Scenario {
            label: format!("qft/{}+devices2", v.label()),
            benchmark: Benchmark::Qft,
            qubits: n,
            prep: None,
            config: SimConfig::new(Platform::scaled_paper_p100(n).with_devices(2)).with_version(v),
        });
    }
    // Seeded fault injection: retries, codec fallbacks, backoff — the
    // resilient pipeline's modeled timeline must be preserved exactly.
    let faults = FaultConfig {
        seed: 42,
        p_transfer_corrupt: 0.01,
        p_codec_fail: 0.02,
        ..FaultConfig::default()
    };
    out.push(Scenario {
        label: "qft/qgpu+faults42".into(),
        benchmark: Benchmark::Qft,
        qubits: 12,
        prep: None,
        config: SimConfig::new(Platform::scaled_paper_p100(12).with_devices(2))
            .with_version(Version::QGpu)
            .with_faults(faults),
    });
    // Deterministic device loss mid-run: re-shard + barrier replay.
    let loss = FaultConfig {
        seed: 7,
        device_lost_id: 2,
        device_lost_at: 40,
        ..FaultConfig::default()
    };
    out.push(Scenario {
        label: "qft/overlap+devloss".into(),
        benchmark: Benchmark::Qft,
        qubits: 12,
        prep: None,
        config: SimConfig::new(Platform::scaled_paper_p100(12).with_devices(4))
            .with_version(Version::Overlap)
            .with_faults(loss),
    });
    // Memory-pressure governor.
    out.push(Scenario {
        label: "qft/qgpu+membudget".into(),
        benchmark: Benchmark::Qft,
        qubits: n,
        prep: None,
        config: SimConfig::scaled_paper(n)
            .with_version(Version::QGpu)
            .with_mem_budget(6 * 1024),
    });
    // Stochastic execution: seeded per-gate noise (loss inserts resets,
    // so mid-circuit collapse is exercised) plus end-of-circuit shot
    // sampling — state, counters, timeline, and counts all pinned.
    let noise = NoiseConfig {
        depolarizing: 0.05,
        loss: 0.02,
        ..NoiseConfig::default()
    };
    for v in [Version::Baseline, Version::QGpu] {
        out.push(Scenario {
            label: format!("qft/{}+noise11", v.label()),
            benchmark: Benchmark::Qft,
            qubits: n,
            prep: None,
            config: SimConfig::scaled_paper(n)
                .with_version(v)
                .with_noise(noise)
                .with_stoch_seed(11)
                .with_shots(256),
        });
    }
    // Explicit mid-circuit measurements (no noise): the collapse sync
    // point on its own, through both execution modes and the batcher.
    for (v, batching) in [
        (Version::Baseline, false),
        (Version::QGpu, false),
        (Version::QGpu, true),
    ] {
        let mut config = SimConfig::scaled_paper(n)
            .with_version(v)
            .with_stoch_seed(5)
            .with_shots(128);
        let mut label = format!("qft/{}+measure", v.label());
        if batching {
            config = config.with_gate_batching();
            label.push_str("+batching");
        }
        out.push(Scenario {
            label,
            benchmark: Benchmark::Qft,
            qubits: n,
            prep: Some(|c: &mut Circuit| {
                c.measure(0).h(0).measure(1).reset(2).h(2);
            }),
            config,
        });
    }
    out
}

fn run_fingerprints(s: &Scenario) -> String {
    let mut circuit = s.benchmark.generate(s.qubits);
    if let Some(prep) = s.prep {
        prep(&mut circuit);
    }
    let r = Simulator::new(s.config.clone().with_trace(200_000)).run(&circuit);
    let state = r.state.as_ref().expect("state collected");
    format!(
        "{} state={:016x} report={:016x} trace={:016x} samples={:016x}",
        s.label,
        state_fingerprint(state),
        report_fingerprint(&r.report),
        trace_fingerprint(&r.trace),
        samples_fingerprint(r.samples.as_deref()),
    )
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures/golden")
        .join("engine_fingerprints.txt")
}

#[test]
fn engine_matches_golden_fingerprints() {
    let mut actual = String::new();
    for s in scenarios() {
        writeln!(actual, "{}", run_fingerprints(&s)).unwrap();
    }

    let path = fixture_path();
    if std::env::var_os("QGPU_GOLDEN_REGEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &actual).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }

    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun with QGPU_GOLDEN_REGEN=1 to capture fixtures",
            path.display()
        )
    });
    let mut mismatches = Vec::new();
    for (want, got) in expected.lines().zip(actual.lines()) {
        if want != got {
            mismatches.push(format!("  expected: {want}\n  actual:   {got}"));
        }
    }
    if expected.lines().count() != actual.lines().count() {
        mismatches.push(format!(
            "  scenario count changed: fixture {} vs actual {}",
            expected.lines().count(),
            actual.lines().count()
        ));
    }
    assert!(
        mismatches.is_empty(),
        "engine behavior diverged from golden fixtures \
         (deliberate? regenerate with QGPU_GOLDEN_REGEN=1):\n{}",
        mismatches.join("\n")
    );
}
