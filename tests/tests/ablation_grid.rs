//! The stage-graph's strongest composition property: *every* subset of
//! the paper's four optimizations — not just the five named versions —
//! runs through the composed pipeline and lands on the bit-identical
//! final state the static baseline computes over the same gate order.
//! An optimization that moved a single bit anywhere in the 2^4 grid
//! fails here.
//!
//! Gate order is the one bit-visible degree of freedom: floating-point
//! addition doesn't associate, so the reorder pass (which the baseline
//! never runs) can legitimately shift the last ulp. Subsets with the
//! reorder flag are therefore held against the baseline executing the
//! *reordered* circuit — the same program, so still a pure pipeline
//! comparison.

use qgpu::{OptFlags, SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_sched::reorder::ReorderStrategy;
use qgpu_statevec::StateVector;

fn assert_bitwise_eq(a: &StateVector, b: &StateVector, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: dimension mismatch");
    for i in 0..a.len() {
        let (x, y) = (a.amp(i), b.amp(i));
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{ctx}: amplitude {i} differs ({x:?} vs {y:?})"
        );
    }
}

#[test]
fn every_flag_subset_is_bit_identical_to_the_baseline() {
    for (b, n) in [
        (Benchmark::Qft, 10),
        (Benchmark::Iqp, 11),
        (Benchmark::Bv, 12),
    ] {
        let c = b.generate(n);
        // The default strategy the engine's reorder flag applies.
        let reordered_c = ReorderStrategy::ForwardLooking.reorder(&c);
        let baseline = |circuit| {
            Simulator::new(SimConfig::scaled_paper(n).with_version(Version::Baseline))
                .run(circuit)
                .state
                .expect("collected")
        };
        let plain = baseline(&c);
        let reordered = baseline(&reordered_c);
        for f in OptFlags::grid() {
            let r = Simulator::new(SimConfig::scaled_paper(n).with_opts(f)).run(&c);
            let expected = if f.reorder { &reordered } else { &plain };
            assert_bitwise_eq(
                expected,
                &r.state.expect("collected"),
                &format!("{b}_{n}/{f}"),
            );
        }
    }
}
