//! The stage-graph's strongest composition property: *every* subset of
//! the paper's four optimizations — not just the five named versions —
//! runs through the composed pipeline and lands on the bit-identical
//! final state the static baseline computes over the same gate order.
//! An optimization that moved a single bit anywhere in the 2^4 grid
//! fails here.
//!
//! Gate order is the one bit-visible degree of freedom: floating-point
//! addition doesn't associate, so the reorder pass (which the baseline
//! never runs) can legitimately shift the last ulp. Subsets with the
//! reorder flag are therefore held against the baseline executing the
//! *reordered* circuit — the same program, so still a pure pipeline
//! comparison.

use qgpu::{NoiseConfig, OptFlags, SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::Circuit;
use qgpu_sched::reorder::ReorderStrategy;
use qgpu_statevec::StateVector;

fn assert_bitwise_eq(a: &StateVector, b: &StateVector, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: dimension mismatch");
    for i in 0..a.len() {
        let (x, y) = (a.amp(i), b.amp(i));
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{ctx}: amplitude {i} differs ({x:?} vs {y:?})"
        );
    }
}

#[test]
fn every_flag_subset_is_bit_identical_to_the_baseline() {
    for (b, n) in [
        (Benchmark::Qft, 10),
        (Benchmark::Iqp, 11),
        (Benchmark::Bv, 12),
    ] {
        let c = b.generate(n);
        // The default strategy the engine's reorder flag applies.
        let reordered_c = ReorderStrategy::ForwardLooking.reorder(&c);
        let baseline = |circuit| {
            Simulator::new(SimConfig::scaled_paper(n).with_version(Version::Baseline))
                .run(circuit)
                .state
                .expect("collected")
        };
        let plain = baseline(&c);
        let reordered = baseline(&reordered_c);
        for f in OptFlags::grid() {
            let r = Simulator::new(SimConfig::scaled_paper(n).with_opts(f)).run(&c);
            let expected = if f.reorder { &reordered } else { &plain };
            assert_bitwise_eq(
                expected,
                &r.state.expect("collected"),
                &format!("{b}_{n}/{f}"),
            );
        }
    }
}

#[test]
fn every_flag_subset_is_bit_identical_under_seeded_noise() {
    // The stochastic extension of the grid: under a fixed noise seed the
    // engine applies the same pure circuit rewrite (noise inserted
    // *before* reorder/fusion) and the same site-keyed collapse draws on
    // every path — so the static baseline running the explicitly
    // pre-noised circuit is still the golden state for all 2^4 subsets.
    let n = 10;
    let seed = 23u64;
    let nc = NoiseConfig {
        depolarizing: 0.05,
        loss: 0.02,
        ..NoiseConfig::default()
    };
    let mut c = Benchmark::Qft.generate(n);
    // Explicit mid-circuit collapses on top of the loss-inserted resets.
    c.measure(0).h(0).measure(1);

    // `NoiseConfig::apply` is the exact rewrite the engine performs.
    let noised = nc.apply(&c, seed);
    assert!(noised.len() > c.len(), "seed {seed} inserted no noise");
    let reordered_c = ReorderStrategy::ForwardLooking.reorder(&noised);
    let baseline = |circuit: &Circuit| {
        let cfg = SimConfig::scaled_paper(n)
            .with_version(Version::Baseline)
            .with_stoch_seed(seed);
        Simulator::new(cfg).run(circuit)
    };
    let plain = baseline(&noised);
    let reordered = baseline(&reordered_c);
    assert!(plain.report.collapses > 0, "no collapse was exercised");

    for f in OptFlags::grid() {
        let cfg = SimConfig::scaled_paper(n)
            .with_opts(f)
            .with_noise(nc)
            .with_stoch_seed(seed);
        let r = Simulator::new(cfg).run(&c);
        let expected = if f.reorder { &reordered } else { &plain };
        assert_bitwise_eq(
            expected.state.as_ref().expect("collected"),
            &r.state.expect("collected"),
            &format!("noisy qft_{n}/{f}"),
        );
        assert_eq!(
            expected.report.collapses, r.report.collapses,
            "noisy qft_{n}/{f}: collapse count"
        );
    }
}
