//! Fault-injection integration: seeded fault campaigns across the
//! execution versions must be absorbed **bit-exactly** — the paper's
//! "optimizations do not affect the simulation results" invariant holds
//! even while transfers are corrupted, encodes fail, involvement masks
//! rot and workers die — with every recovery visible in the report and
//! charged to the modeled timeline. An injected fatal fault must be
//! recoverable through the periodic checkpoint.

use qgpu::{FaultConfig, SimConfig, SimError, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_statevec::StateVector;

/// Asserts two states are equal down to the last bit of every amplitude.
fn assert_bitwise_eq(a: &StateVector, b: &StateVector, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: dimension mismatch");
    for i in 0..a.len() {
        let (x, y) = (a.amp(i), b.amp(i));
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{ctx}: amplitude {i} differs ({x:?} vs {y:?})"
        );
    }
}

#[test]
fn seeded_campaign_is_absorbed_across_versions() {
    let n = 11;
    let c = Benchmark::Qft.generate(n);
    let faults = FaultConfig {
        seed: 1234,
        p_transfer_corrupt: 0.01,
        p_codec_fail: 0.01,
        p_mask_corrupt: 0.05,
        p_stage_slowdown: 0.01,
        ..FaultConfig::default()
    };
    for v in Version::ALL {
        let clean = Simulator::new(SimConfig::scaled_paper(n).with_version(v)).run(&c);
        let faulty = Simulator::new(
            SimConfig::scaled_paper(n)
                .with_version(v)
                .with_faults(faults),
        )
        .try_run(&c)
        .unwrap_or_else(|e| panic!("{v}: campaign must be absorbed, got {e}"));
        assert_bitwise_eq(
            clean.state.as_ref().expect("collected"),
            faulty.state.as_ref().expect("collected"),
            &format!("{v}"),
        );
        // Baseline models no per-chunk streaming transfers, so only the
        // streaming versions can retry; there the campaign must fire.
        if v != Version::Baseline {
            assert!(faulty.report.chunk_retries > 0, "{v}: no retries fired");
            assert!(
                faulty.report.total_time > clean.report.total_time,
                "{v}: recoveries must cost modeled time"
            );
        }
    }
}

#[test]
fn degradation_fallbacks_fire_and_preserve_the_state() {
    let n = 12;
    let c = Benchmark::Iqp.generate(n);
    let clean = Simulator::new(SimConfig::scaled_paper(n).with_version(Version::QGpu)).run(&c);
    let faults = FaultConfig {
        seed: 5,
        p_codec_fail: 0.05,
        p_mask_corrupt: 0.1,
        ..FaultConfig::default()
    };
    let r = Simulator::new(
        SimConfig::scaled_paper(n)
            .with_version(Version::QGpu)
            .with_faults(faults),
    )
    .try_run(&c)
    .expect("degradations must be absorbed");
    assert!(r.report.codec_fallbacks > 0, "no codec fallback fired");
    assert!(r.report.prune_fallbacks > 0, "no prune fallback fired");
    assert_bitwise_eq(
        clean.state.as_ref().expect("collected"),
        r.state.as_ref().expect("collected"),
        "degraded run",
    );
}

#[test]
fn worker_death_campaign_is_bit_exact_across_thread_counts() {
    let n = 15;
    let c = Benchmark::Qft.generate(n);
    let clean = Simulator::new(SimConfig::scaled_paper(n).with_version(Version::QGpu)).run(&c);
    let faults = FaultConfig {
        seed: 11,
        p_worker_death: 0.05,
        ..FaultConfig::default()
    };
    for threads in [2usize, 4] {
        let r = Simulator::new(
            SimConfig::scaled_paper(n)
                .with_version(Version::QGpu)
                .with_threads(threads)
                .with_faults(faults),
        )
        .try_run(&c)
        .expect("worker deaths must be recovered");
        assert!(
            r.report.worker_restarts > 0,
            "threads {threads}: no deaths injected"
        );
        assert_bitwise_eq(
            clean.state.as_ref().expect("collected"),
            r.state.as_ref().expect("collected"),
            &format!("threads {threads}"),
        );
    }
}

#[test]
fn fatal_fault_recovers_through_checkpoint_in_every_engine() {
    let n = 10;
    let c = Benchmark::Qft.generate(n);
    for v in [Version::Baseline, Version::QGpu] {
        let base = SimConfig::scaled_paper(n).with_version(v);
        let clean = Simulator::new(base.clone()).run(&c);
        let path =
            std::env::temp_dir().join(format!("qgpu_fault_it_{}_{v}.ckpt", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path").to_string();

        let kill_at = c.len() / 2;
        let faults = FaultConfig {
            fail_at_gate: kill_at,
            ..FaultConfig::default()
        };
        let err = Simulator::new(
            base.clone()
                .with_faults(faults)
                .with_checkpointing(7, &path),
        )
        .try_run(&c)
        .expect_err("fatal fault must abort");
        assert!(
            matches!(err, SimError::Fatal { gate, .. } if gate == kill_at),
            "{v}: unexpected error {err}"
        );

        let ck = qgpu::checkpoint::load_with_progress(&path).expect("checkpoint written");
        assert!(ck.gates_done > 0 && ck.gates_done <= kill_at as u64);
        let resumed = Simulator::new(base)
            .try_run_from(&c, Some(&ck))
            .expect("resume");
        assert_bitwise_eq(
            clean.state.as_ref().expect("collected"),
            resumed.state.as_ref().expect("collected"),
            &format!("{v} resumed"),
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn injection_composes_with_batching_fusion_and_obs() {
    // The resilience layer must not interact with the other pipeline
    // extensions: same bits with everything on at once.
    let n = 11;
    let c = Benchmark::Hchain.generate(n);
    let clean = Simulator::new(SimConfig::scaled_paper(n).with_version(Version::QGpu)).run(&c);
    let faults = FaultConfig {
        seed: 77,
        p_transfer_corrupt: 0.02,
        p_codec_fail: 0.02,
        p_mask_corrupt: 0.05,
        ..FaultConfig::default()
    };
    let r = Simulator::new(
        SimConfig::scaled_paper(n)
            .with_version(Version::QGpu)
            .with_gate_batching()
            .with_gate_fusion()
            .with_obs_spans()
            .with_faults(faults),
    )
    .try_run(&c)
    .expect("absorbed");
    assert_bitwise_eq(
        clean.state.as_ref().expect("collected"),
        r.state.as_ref().expect("collected"),
        "batched+fused+observed",
    );
    // The recovery counters flow into the metrics sink too.
    let obs = r.obs.as_ref().expect("obs collected");
    assert_eq!(
        obs.metrics.counter("chunk.retries").unwrap_or(0),
        r.report.chunk_retries,
        "recorder and report disagree on retries"
    );
}
