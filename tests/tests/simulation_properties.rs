//! Property-based tests over the full stack: random circuits through
//! every layer must preserve the quantum-mechanical and systems
//! invariants.

use proptest::prelude::*;
use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::{Circuit, Gate};
use qgpu_compress::GfcCodec;
use qgpu_sched::reorder::ReorderStrategy;
use qgpu_statevec::{ChunkedState, StateVector};

/// Strategy: a random operation on `n` qubits.
fn arb_gate(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(|a| (Gate::H, vec![a])),
        q.clone().prop_map(|a| (Gate::X, vec![a])),
        q.clone().prop_map(|a| (Gate::T, vec![a])),
        (q.clone(), -3.0f64..3.0).prop_map(|(a, t)| (Gate::Rx(t), vec![a])),
        (q.clone(), -3.0f64..3.0).prop_map(|(a, t)| (Gate::Rz(t), vec![a])),
        (q.clone(), -3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0)
            .prop_map(|(a, x, y, z)| (Gate::U(x, y, z), vec![a])),
        q2.clone().prop_map(|(a, b)| (Gate::Cx, vec![a, b])),
        q2.clone().prop_map(|(a, b)| (Gate::Cz, vec![a, b])),
        q2.clone().prop_map(|(a, b)| (Gate::Swap, vec![a, b])),
        (q2, -3.0f64..3.0).prop_map(|((a, b), t)| (Gate::Cp(t), vec![a, b])),
    ]
}

/// Strategy: a random circuit over `n` qubits with up to `max_ops` gates.
fn arb_circuit(n: usize, max_ops: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..max_ops).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for (g, qs) in gates {
            c.apply(g, &qs);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_circuits_preserve_norm(c in arb_circuit(7, 40)) {
        let mut s = StateVector::new_zero(7);
        s.run(&c);
        prop_assert!((s.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chunked_matches_flat_on_random_circuits(
        c in arb_circuit(7, 40),
        chunk_bits in 1u32..7,
    ) {
        let mut flat = StateVector::new_zero(7);
        flat.run(&c);
        let mut chunked = ChunkedState::new_zero(7, chunk_bits);
        for op in c.iter() {
            chunked.apply_operation(op);
        }
        prop_assert!(chunked.to_flat().max_deviation(&flat) < 1e-9);
    }

    #[test]
    fn reordering_never_changes_the_state(c in arb_circuit(7, 40)) {
        let mut original = StateVector::new_zero(7);
        original.run(&c);
        for strategy in [ReorderStrategy::Greedy, ReorderStrategy::ForwardLooking] {
            let mut reordered = StateVector::new_zero(7);
            reordered.run(&strategy.reorder(&c));
            prop_assert!(
                reordered.max_deviation(&original) < 1e-9,
                "{strategy} changed the state"
            );
        }
    }

    #[test]
    fn full_pipeline_matches_reference_on_random_circuits(c in arb_circuit(7, 30)) {
        let mut expect = StateVector::new_zero(7);
        expect.run(&c);
        let r = Simulator::new(SimConfig::scaled_paper(7).with_version(Version::QGpu))
            .run(&c);
        prop_assert!(r.state.expect("collected").max_deviation(&expect) < 1e-9);
    }

    #[test]
    fn full_pipeline_with_batching_matches_dense_oracle(c in arb_circuit(6, 25)) {
        // Strongest oracle: the dense 2^n x 2^n operator path shares no
        // indexing code with the chunked kernels, the scheduler, or the
        // batching extension.
        let dense = qgpu_statevec::reference::run_dense(&c);
        let r = Simulator::new(
            SimConfig::scaled_paper(6)
                .with_version(Version::QGpu)
                .with_gate_batching(),
        )
        .run(&c);
        prop_assert!(r.state.expect("collected").max_deviation(&dense) < 1e-9);
    }

    #[test]
    fn gfc_roundtrips_simulated_states(c in arb_circuit(6, 25), segments in 1usize..9) {
        let mut s = StateVector::new_zero(6);
        s.run(&c);
        let codec = GfcCodec::new(segments);
        let compressed = codec.compress_amplitudes(s.amps());
        let restored = codec.decompress_amplitudes(&compressed);
        for (a, b) in s.amps().iter().zip(restored.iter()) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn modeled_time_is_finite_and_nonnegative(c in arb_circuit(6, 20)) {
        for v in Version::ALL {
            let r = Simulator::new(SimConfig::scaled_paper(6).with_version(v).timing_only())
                .run(&c);
            prop_assert!(r.report.total_time.is_finite());
            // A pruning version may legitimately model zero time for a
            // circuit whose every chunk task is provably zero (e.g. a
            // lone CX whose control was never involved); other versions
            // always do work.
            if v.has_pruning() {
                prop_assert!(r.report.total_time >= 0.0);
            } else {
                prop_assert!(r.report.total_time > 0.0);
            }
        }
    }
}
