//! Property-based tests of the gate-fusion pass: fused execution must be
//! *bit-identical* to the unfused gate-by-gate run, and both must agree
//! with the dense-operator oracle ([`qgpu_statevec::reference`]) to
//! floating-point tolerance.
//!
//! Bit-equality is asserted against [`StateVector::run`] (the same kernel
//! arithmetic in a different visiting order); the dense oracle multiplies
//! full `2^n × 2^n` operators, which rounds differently, so it anchors
//! correctness at `1e-9` rather than bitwise.

use proptest::prelude::*;
use qgpu_circuit::fuse::{fuse, gates_fused, lower};
use qgpu_circuit::{Circuit, Gate};
use qgpu_statevec::{reference, StateVector};

/// Strategy: a random operation on `n` qubits, mixing dense and diagonal
/// gates so runs of both kinds form.
fn arb_gate(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(|a| (Gate::H, vec![a])),
        q.clone().prop_map(|a| (Gate::X, vec![a])),
        q.clone().prop_map(|a| (Gate::T, vec![a])),
        q.clone().prop_map(|a| (Gate::S, vec![a])),
        (q.clone(), -3.0f64..3.0).prop_map(|(a, t)| (Gate::Rx(t), vec![a])),
        (q.clone(), -3.0f64..3.0).prop_map(|(a, t)| (Gate::Rz(t), vec![a])),
        (q.clone(), -3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0)
            .prop_map(|(a, x, y, z)| (Gate::U(x, y, z), vec![a])),
        q2.clone().prop_map(|(a, b)| (Gate::Cx, vec![a, b])),
        q2.clone().prop_map(|(a, b)| (Gate::Cz, vec![a, b])),
        q2.clone().prop_map(|(a, b)| (Gate::Swap, vec![a, b])),
        (q2, -3.0f64..3.0).prop_map(|((a, b), t)| (Gate::Cp(t), vec![a, b])),
    ]
}

/// Strategy: a *diagonal-heavy* operation, so long diagonal runs (and the
/// multi-qubit diagonal merge) are exercised hard.
fn arb_diagonal_gate(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(|a| (Gate::Z, vec![a])),
        q.clone().prop_map(|a| (Gate::S, vec![a])),
        q.clone().prop_map(|a| (Gate::T, vec![a])),
        (q.clone(), -3.0f64..3.0).prop_map(|(a, t)| (Gate::Rz(t), vec![a])),
        (q.clone(), -3.0f64..3.0).prop_map(|(a, t)| (Gate::Phase(t), vec![a])),
        q2.clone().prop_map(|(a, b)| (Gate::Cz, vec![a, b])),
        (q2.clone(), -3.0f64..3.0).prop_map(|((a, b), t)| (Gate::Cp(t), vec![a, b])),
        (q2, -3.0f64..3.0).prop_map(|((a, b), t)| (Gate::Rzz(t), vec![a, b])),
        // An occasional dense gate breaks runs and seeds amplitude.
        q.prop_map(|a| (Gate::H, vec![a])),
    ]
}

fn circuit_of(n: usize, gates: Vec<(Gate, Vec<usize>)>) -> Circuit {
    let mut c = Circuit::new(n);
    for (g, qs) in gates {
        c.apply(g, &qs);
    }
    c
}

fn arb_circuit(n: usize, max_ops: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 1..max_ops).prop_map(move |gates| circuit_of(n, gates))
}

fn arb_diagonal_circuit(n: usize, max_ops: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_diagonal_gate(n), 1..max_ops)
        .prop_map(move |gates| circuit_of(n, gates))
}

fn assert_bitwise_eq(a: &StateVector, b: &StateVector, ctx: &str) {
    for i in 0..a.len() {
        let (x, y) = (a.amp(i), b.amp(i));
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{ctx}: amplitude {i} differs ({x:?} vs {y:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fused_runs_match_unfused_bitwise_at_every_thread_count(c in arb_circuit(7, 40)) {
        let mut unfused = StateVector::new_zero(7);
        unfused.run(&c);
        let oracle = reference::run_dense(&c);
        prop_assert!(unfused.max_deviation(&oracle) < 1e-9);
        for threads in [1usize, 2, 4] {
            let mut fused = StateVector::new_zero(7);
            fused.run_fused(&c, threads);
            assert_bitwise_eq(&unfused, &fused, &format!("threads {threads}"));
        }
    }

    #[test]
    fn diagonal_runs_fuse_and_match_bitwise(c in arb_diagonal_circuit(7, 50)) {
        let mut unfused = StateVector::new_zero(7);
        unfused.run(&c);
        let oracle = reference::run_dense(&c);
        prop_assert!(unfused.max_deviation(&oracle) < 1e-9);
        for threads in [1usize, 2, 4] {
            let mut fused = StateVector::new_zero(7);
            fused.run_fused(&c, threads);
            assert_bitwise_eq(&unfused, &fused, &format!("threads {threads}"));
        }
    }

    #[test]
    fn collapsed_kernels_match_oracle_to_tolerance(c in arb_circuit(7, 40)) {
        // The collapsed path multiplies matrices before applying them, so
        // it rounds differently from gate-by-gate execution — but it must
        // stay within normal f64 tolerance of the oracle, and must itself
        // be deterministic across thread counts.
        let oracle = reference::run_dense(&c);
        let mut one = StateVector::new_zero(7);
        one.run_fused_collapsed(&c, 1);
        prop_assert!(one.max_deviation(&oracle) < 1e-9);
        for threads in [2usize, 4] {
            let mut many = StateVector::new_zero(7);
            many.run_fused_collapsed(&c, threads);
            assert_bitwise_eq(&one, &many, &format!("collapsed, threads {threads}"));
        }
    }

    #[test]
    fn fusion_never_reorders_across_incompatible_gates(c in arb_circuit(6, 30)) {
        // Structural invariants of the pass: every source gate lands in
        // exactly one fused op, in order, and the op count plus the fused
        // count always balance.
        let program = fuse(&c);
        let total: usize = program.iter().map(|f| f.source_gates()).sum();
        prop_assert_eq!(total, c.len());
        prop_assert_eq!(gates_fused(&program), c.len() - program.len());
        let lowered = lower(&c);
        prop_assert_eq!(lowered.len(), c.len());
    }
}

#[test]
fn empty_circuit_fuses_to_empty_program() {
    let c = Circuit::new(3);
    assert!(fuse(&c).is_empty());
    let mut s = StateVector::new_zero(3);
    s.run_fused(&c, 4);
    assert_eq!(s.amp(0).re, 1.0);
    assert_eq!(s.zero_count(), 7);
}

#[test]
fn single_gate_circuit_is_a_singleton_program() {
    let mut c = Circuit::new(3);
    c.h(1);
    let program = fuse(&c);
    assert_eq!(program.len(), 1);
    assert!(!program[0].is_fused());
    let mut fused = StateVector::new_zero(3);
    fused.run_fused(&c, 2);
    let mut plain = StateVector::new_zero(3);
    plain.run(&c);
    assert_bitwise_eq(&plain, &fused, "single gate");
}

#[test]
fn pure_diagonal_circuit_collapses_to_few_ops() {
    // Adjacent diagonal gates merge regardless of qubit, so a diagonal
    // slab over few qubits becomes a single fused op.
    let mut c = Circuit::new(4);
    c.h(0).h(1).h(2).h(3);
    for q in 0..4 {
        c.t(q);
    }
    c.cz(0, 1).cp(0.7, 1, 2).rz(0.3, 3);
    let program = fuse(&c);
    // 4 H gates (one run per qubit would need same-qubit adjacency: they
    // are on distinct qubits, so 4 opaque-ish singles) + 1 merged
    // diagonal slab.
    assert_eq!(program.len(), 5, "program: {} ops", program.len());
    assert_eq!(program[4].source_gates(), 7);
    let mut fused = StateVector::new_zero(4);
    fused.run_fused(&c, 3);
    let mut plain = StateVector::new_zero(4);
    plain.run(&c);
    assert_bitwise_eq(&plain, &fused, "diagonal slab");
}
