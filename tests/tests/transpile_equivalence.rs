//! Transpilation must preserve simulation semantics: every benchmark
//! decomposed to the {1-qubit, CX} basis simulates to the identical state
//! (exactly — the decompositions used carry no global phase).

use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::transpile;
use qgpu_circuit::{Circuit, Gate};
use qgpu_statevec::StateVector;

fn run(c: &Circuit) -> StateVector {
    let mut s = StateVector::new_zero(c.num_qubits());
    s.run(c);
    s
}

#[test]
fn cx_basis_matches_original_on_all_benchmarks() {
    for b in Benchmark::ALL {
        let original = b.generate(9);
        let basis = transpile::to_cx_basis(&original);
        let dev = run(&basis).max_deviation(&run(&original));
        assert!(dev < 1e-10, "{b}: transpile deviation {dev}");
    }
}

#[test]
fn each_decomposition_rule_is_exact() {
    // One circuit per decomposed gate, on states that exercise all basis
    // components (Hadamard preamble).
    let cases: Vec<Circuit> = vec![
        {
            let mut c = Circuit::new(2);
            c.h(0).h(1).cz(0, 1);
            c
        },
        {
            let mut c = Circuit::new(2);
            c.h(0).h(1).cy(0, 1);
            c
        },
        {
            let mut c = Circuit::new(2);
            c.h(0).h(1).cp(0.873, 1, 0);
            c
        },
        {
            let mut c = Circuit::new(2);
            c.h(0).h(1).rzz(-1.41, 0, 1);
            c
        },
        {
            let mut c = Circuit::new(2);
            c.h(0).t(0).swap(0, 1);
            c
        },
        {
            let mut c = Circuit::new(3);
            c.h(0).h(1).h(2).ccx(2, 0, 1);
            c
        },
    ];
    for c in &cases {
        let basis = transpile::to_cx_basis(c);
        let dev = run(&basis).max_deviation(&run(c));
        assert!(
            dev < 1e-12,
            "{}: deviation {dev}",
            c.ops().last().expect("non-empty").gate().name()
        );
    }
}

#[test]
fn transpiled_circuits_roundtrip_through_qasm() {
    let c = transpile::to_cx_basis(&Benchmark::Qf.generate(8));
    let parsed = qgpu_circuit::qasm::parse(&qgpu_circuit::qasm::to_qasm(&c)).expect("parse");
    assert!(run(&parsed).max_deviation(&run(&c)) < 1e-12);
}

#[test]
fn canonicalized_roots_match_up_to_global_phase() {
    let mut c = Circuit::new(2);
    c.sx(0).sy(1).cx(0, 1).sx(1);
    let canon = transpile::canonicalize_roots(&c);
    assert!(canon
        .iter()
        .all(|op| !matches!(op.gate(), Gate::Sx | Gate::Sy)));
    let a = run(&c);
    let b = run(&canon);
    // Fidelity 1 even though amplitudes differ by a global phase.
    assert!((a.fidelity(&b) - 1.0).abs() < 1e-10);
}

#[test]
fn transpilation_grows_two_qubit_count_predictably() {
    let mut c = Circuit::new(3);
    c.swap(0, 1).ccx(0, 1, 2).cz(1, 2);
    let basis = transpile::to_cx_basis(&c);
    // swap -> 3 cx, ccx -> 6 cx, cz -> 1 cx.
    assert_eq!(transpile::two_qubit_gate_count(&basis), 10);
}

#[test]
fn peephole_preserves_semantics_on_benchmarks() {
    for b in Benchmark::ALL {
        // Pad each benchmark with redundant gates, then optimize.
        let mut c = b.generate(8);
        let mut padded = Circuit::new(8);
        for (i, op) in c.iter().enumerate() {
            padded.push(op.clone());
            if i % 3 == 0 {
                let q = op.qubits()[0];
                padded.x(q).x(q); // redundant pair
            }
        }
        c = padded;
        let optimized = transpile::peephole(&c);
        assert!(optimized.len() < c.len(), "{b}: nothing removed");
        let dev = run(&optimized).max_deviation(&run(&c));
        assert!(dev < 1e-10, "{b}: peephole deviation {dev}");
    }
}

#[test]
fn peephole_after_cx_basis_shrinks_decompositions() {
    // cz(a,b) cz(a,b) decomposes to h cx h h cx h: peephole collapses it
    // entirely.
    let mut c = Circuit::new(2);
    c.cz(0, 1).cz(0, 1);
    let optimized = transpile::peephole(&transpile::to_cx_basis(&c));
    assert!(optimized.is_empty(), "{} ops left", optimized.len());
}
