//! Serde and common-trait conformance for the configuration and report
//! types that downstream tooling persists.
//!
//! No JSON/binary codec is in the dependency set, so serializability is
//! asserted at compile time via trait bounds; value-level checks go
//! through `Clone`/`PartialEq`.

use qgpu::{SimConfig, Version};
use qgpu_device::{ExecutionReport, GpuSpec, HostSpec, LinkSpec, Platform};

fn assert_serializable<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn core_types_implement_serde() {
    assert_serializable::<Platform>();
    assert_serializable::<GpuSpec>();
    assert_serializable::<HostSpec>();
    assert_serializable::<LinkSpec>();
    assert_serializable::<ExecutionReport>();
    assert_serializable::<SimConfig>();
    assert_serializable::<Version>();
    assert_serializable::<qgpu::experiments::Table>();
    assert_serializable::<qgpu_math::Complex64>();
    assert_serializable::<qgpu_compress::Compressed>();
}

#[test]
fn core_types_are_send_sync() {
    // Required for the parallel experiment runner and any multithreaded
    // embedding (C-SEND-SYNC).
    assert_send_sync::<SimConfig>();
    assert_send_sync::<Platform>();
    assert_send_sync::<qgpu::RunResult>();
    assert_send_sync::<qgpu_statevec::StateVector>();
    assert_send_sync::<qgpu_statevec::ChunkedState>();
    assert_send_sync::<qgpu_circuit::Circuit>();
    assert_send_sync::<qgpu_compress::GfcCodec>();
}

#[test]
fn errors_are_well_behaved() {
    // Error types implement Error + Send + Sync + 'static (C-GOOD-ERR).
    fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<qgpu_circuit::qasm::ParseQasmError>();
    assert_error::<qgpu_compress::gfc::DecodeGfcError>();
}

#[test]
fn presets_are_cloneable_and_equal() {
    for p in [
        Platform::paper_p100(),
        Platform::paper_v100(),
        Platform::paper_a100(),
        Platform::quad_p4_pcie(),
        Platform::quad_v100_nvlink(),
    ] {
        assert_eq!(p.clone(), p);
    }
}
