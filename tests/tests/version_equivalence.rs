//! The paper's central correctness claim, end to end: every execution
//! version — across chunk sizes, platforms, and GPU counts — produces the
//! identical final state, and pruning/reordering/compression "do not
//! affect the simulation results nor introduce error" (§IV-C).

use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_device::Platform;
use qgpu_sched::reorder::ReorderStrategy;
use qgpu_statevec::StateVector;

fn reference(b: Benchmark, n: usize) -> StateVector {
    let c = b.generate(n);
    let mut s = StateVector::new_zero(n);
    s.run(&c);
    s
}

/// Asserts two states are equal down to the last bit of every amplitude.
fn assert_bitwise_eq(a: &StateVector, b: &StateVector, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: dimension mismatch");
    for i in 0..a.len() {
        let (x, y) = (a.amp(i), b.amp(i));
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{ctx}: amplitude {i} differs ({x:?} vs {y:?})"
        );
    }
}

#[test]
fn all_versions_all_benchmarks_match_reference() {
    let n = 10;
    for b in Benchmark::ALL {
        let circuit = b.generate(n);
        let expect = reference(b, n);
        for v in Version::ALL {
            let r = Simulator::new(SimConfig::scaled_paper(n).with_version(v)).run(&circuit);
            let dev = r.state.expect("state collected").max_deviation(&expect);
            assert!(dev < 1e-9, "{b}/{v}: deviation {dev}");
        }
    }
}

#[test]
fn chunk_count_does_not_change_results() {
    let n = 10;
    let circuit = Benchmark::Hchain.generate(n);
    let expect = reference(Benchmark::Hchain, n);
    for chunk_count_log2 in [1, 3, 5, 7, 9] {
        let cfg = SimConfig::scaled_paper(n)
            .with_version(Version::QGpu)
            .with_chunk_count_log2(chunk_count_log2);
        let r = Simulator::new(cfg).run(&circuit);
        let dev = r.state.expect("collected").max_deviation(&expect);
        assert!(dev < 1e-9, "chunk_count_log2={chunk_count_log2}: {dev}");
    }
}

#[test]
fn all_versions_and_thread_counts_are_bitwise_identical() {
    // The determinism harness: every (version, threads) pair — six
    // versions × threads {1, 2, 4}, with and without gate fusion — must
    // produce the *bit-identical* final state vector. Reordering is
    // pinned to `Original` so every version executes the same gate order
    // (a reorder legitimately changes rounding); with a fixed order the
    // flat single-threaded reference is the golden state and chunking,
    // threading and fusion must all be bitwise invisible.
    let n = 10;
    for b in [Benchmark::Qft, Benchmark::Qaoa, Benchmark::Rqc] {
        let circuit = b.generate(n);
        let golden = {
            let mut s = StateVector::new_zero(n);
            s.run(&circuit);
            s
        };
        for fusion in [false, true] {
            for v in Version::ALL {
                for threads in [1usize, 2, 4] {
                    let mut cfg = SimConfig::scaled_paper(n)
                        .with_version(v)
                        .with_reorder_strategy(ReorderStrategy::Original)
                        .with_threads(threads);
                    if fusion {
                        cfg = cfg.with_gate_fusion();
                    }
                    let r = Simulator::new(cfg).run(&circuit);
                    let state = r.state.expect("collected");
                    assert_bitwise_eq(
                        &golden,
                        &state,
                        &format!("{b}/{v}, threads {threads}, fusion {fusion}"),
                    );
                }
            }
        }
    }
}

#[test]
fn reordering_versions_are_bitwise_stable_across_threads() {
    // Under the default forward-looking reorder the executed gate order
    // differs from the source order (so the flat reference only matches
    // to tolerance), but within one version the result must still be
    // bitwise independent of the thread count.
    let n = 10;
    let circuit = Benchmark::Hchain.generate(n);
    for v in [Version::Reorder, Version::QGpu] {
        let base = SimConfig::scaled_paper(n)
            .with_version(v)
            .with_gate_fusion();
        let one = Simulator::new(base.clone())
            .run(&circuit)
            .state
            .expect("collected");
        for threads in [2usize, 4] {
            let many = Simulator::new(base.clone().with_threads(threads))
                .run(&circuit)
                .state
                .expect("collected");
            assert_bitwise_eq(&one, &many, &format!("{v}, threads {threads}"));
        }
    }
}

#[test]
fn multi_gpu_does_not_change_results() {
    let n = 10;
    for b in [Benchmark::Qft, Benchmark::Gs, Benchmark::Iqp] {
        let circuit = b.generate(n);
        let expect = reference(b, n);
        for platform in [
            Platform::quad_p4_pcie().miniaturize(n, 0.02),
            Platform::quad_v100_nvlink().miniaturize(n, 0.02),
        ] {
            for v in [Version::Baseline, Version::Overlap, Version::QGpu] {
                let r =
                    Simulator::new(SimConfig::new(platform.clone()).with_version(v)).run(&circuit);
                let dev = r.state.expect("collected").max_deviation(&expect);
                assert!(dev < 1e-9, "{b}/{v} on {}: {dev}", platform.name);
            }
        }
    }
}

#[test]
fn comparators_match_reference_too() {
    use qgpu::comparators::{cpu_parallel, qdk_like, qsim_like};
    use qgpu_device::HostSpec;
    let n = 10;
    let host = HostSpec::dual_xeon_4114();
    for b in Benchmark::ALL {
        let circuit = b.generate(n);
        let expect = reference(b, n);
        for result in [
            cpu_parallel(&circuit, &host),
            qsim_like(&circuit, &host),
            qdk_like(&circuit, &host),
        ] {
            let dev = result.state.max_deviation(&expect);
            assert!(dev < 1e-8, "{b}/{}: deviation {dev}", result.engine);
        }
    }
}

#[test]
fn norm_is_preserved_by_the_full_pipeline() {
    for b in Benchmark::ALL {
        let circuit = b.generate(9);
        let r =
            Simulator::new(SimConfig::scaled_paper(9).with_version(Version::QGpu)).run(&circuit);
        let norm = r.state.expect("collected").norm();
        assert!((norm - 1.0).abs() < 1e-9, "{b}: norm {norm}");
    }
}
