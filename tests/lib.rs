//! Integration-test crate: all tests live in the `tests/` subdirectory.
//! See `tests/` for cross-crate invariants (state equivalence across
//! versions, OpenQASM round trips, experiment smoke tests, property
//! tests).
